//! Recursive trees of slotted rings: flat, two-level and three-level
//! topologies over one [`RingConfig`]/[`RingLayout`] machinery.
//!
//! A [`RingTopology`] generalises the fixed local/global pair of
//! [`crate::RingHierarchy`]: level 0 holds the leaf rings carrying the
//! processors, every level above connects the rings one level down through
//! bridge positions, and the root ring closes the tree. The shape vector
//! `[procs_per_leaf, fanout₁, …, fanout_root]` fully determines the
//! geometry; `ring_of`/path queries and the contention-free probe/reply
//! times are computed over the tree path instead of two hard-coded levels.
//!
//! The most-balanced-factorisation heuristic (how a processor count splits
//! into ring dimensions) and the closed-loop transaction-budget heuristic
//! (one coherence transaction per ~50 references) live here so the
//! simulator registry and the network engine share one definition.

use serde::{Deserialize, Serialize};

use ringsim_types::{ConfigError, NodeId, Time};

use crate::config::RingConfig;
use crate::layout::RingLayout;

/// References per coherence transaction used by [`RingTopology::txn_budget`]
/// to map an open-loop reference budget onto the closed-loop workload.
pub const REFS_PER_TXN: u64 = 50;

/// A tree of slotted rings sharing one link configuration.
///
/// # Examples
///
/// ```
/// use ringsim_ring::RingTopology;
///
/// // 64 processors as 4 groups of 4 rings of 4 processors.
/// let t = RingTopology::three_level(4, 4, 4).unwrap();
/// assert_eq!(t.total_nodes(), 64);
/// assert_eq!(t.levels(), 3);
/// assert_eq!(t.leaf_rings(), 16);
/// // Deeper trees shorten every revolution on the probe path.
/// assert!(t.intra_ring_probe_time() < t.flat_equivalent_round_trip());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingTopology {
    /// `shape[0]` is processors per leaf ring; `shape[l]` for `l ≥ 1` is the
    /// child-ring fanout of every level-`l` ring.
    shape: Vec<usize>,
    base: RingConfig,
    /// One geometry per level (all rings of a level are identical).
    layouts: Vec<RingLayout>,
    flat_layout: RingLayout,
}

impl RingTopology {
    /// A single flat ring of `procs` processors (no bridges).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for fewer than 2 or more than 64 processors.
    pub fn flat(procs: usize) -> Result<Self, ConfigError> {
        Self::from_shape(&[procs], RingConfig::standard_500mhz(2))
    }

    /// `rings` leaf rings of `per` processors under one global ring — the
    /// classic two-level hierarchy.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a dimension is below 2 or the total
    /// exceeds 64 processors.
    pub fn two_level(rings: usize, per: usize) -> Result<Self, ConfigError> {
        Self::from_shape(&[per, rings], RingConfig::standard_500mhz(2))
    }

    /// `groups` mid-level rings of `rings` leaf rings of `per` processors
    /// under one root ring.
    ///
    /// # Errors
    ///
    /// See [`RingTopology::two_level`].
    pub fn three_level(groups: usize, rings: usize, per: usize) -> Result<Self, ConfigError> {
        Self::from_shape(&[per, rings, groups], RingConfig::standard_500mhz(2))
    }

    /// Builds a topology from an explicit shape vector with custom link
    /// parameters (node counts in `base` are ignored). `shape[0]` is
    /// processors per leaf ring; each later entry is a level's fanout.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the shape is empty or deeper than 4
    /// levels, any dimension is below 2, or the total exceeds 64 processors
    /// (the workspace-wide sharer-mask limit).
    pub fn from_shape(shape: &[usize], base: RingConfig) -> Result<Self, ConfigError> {
        if shape.is_empty() || shape.len() > 4 {
            return Err(ConfigError::new("shape", "need between 1 and 4 levels"));
        }
        if shape.iter().any(|&d| d < 2) {
            return Err(ConfigError::new("shape", "every dimension needs at least 2"));
        }
        let total: usize = shape.iter().product();
        if total > 64 {
            return Err(ConfigError::new("total_nodes", "at most 64 processors supported"));
        }
        let levels = shape.len();
        let mut layouts = Vec::with_capacity(levels);
        for (level, &dim) in shape.iter().enumerate() {
            // Leaf rings of a multi-level tree and every mid ring carry one
            // extra uplink position; the root (and a flat ring) do not.
            let nodes = if level + 1 == levels { dim.max(2) } else { dim + 1 };
            layouts.push(RingConfig { nodes, ..base }.layout()?);
        }
        let flat_layout = RingConfig { nodes: total, ..base }.layout()?;
        Ok(Self { shape: shape.to_vec(), base, layouts, flat_layout })
    }

    /// The most balanced split of `procs` into `levels` ring dimensions,
    /// every dimension at least 2, larger dimensions towards the leaves.
    /// One level means a flat ring; two levels reproduce the classic
    /// `local rings × nodes per ring` factorisation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `procs` has no such factorisation
    /// (e.g. a prime count at 2 levels) or `levels` is out of range.
    pub fn balanced(levels: usize, procs: usize) -> Result<Self, ConfigError> {
        Self::balanced_with_base(levels, procs, RingConfig::standard_500mhz(2))
    }

    /// [`RingTopology::balanced`] with custom link parameters.
    ///
    /// # Errors
    ///
    /// See [`RingTopology::balanced`].
    pub fn balanced_with_base(
        levels: usize,
        procs: usize,
        base: RingConfig,
    ) -> Result<Self, ConfigError> {
        let dims = balanced_dims(levels, procs)?;
        Self::from_shape(&dims, base)
    }

    /// Number of tree levels (1 = flat).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.shape.len()
    }

    /// The shape vector: processors per leaf ring, then per-level fanouts.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Processors per leaf ring.
    #[must_use]
    pub fn leaf_procs(&self) -> usize {
        self.shape[0]
    }

    /// Total processors.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of leaf rings.
    #[must_use]
    pub fn leaf_rings(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Number of rings at `level` (0 = leaves, `levels() - 1` = root).
    #[must_use]
    pub fn rings_at(&self, level: usize) -> usize {
        self.shape[level + 1..].iter().product()
    }

    /// Child-ring fanout of a ring at `level` (≥ 1).
    #[must_use]
    pub fn children_at(&self, level: usize) -> usize {
        assert!(level >= 1, "leaf rings have no child rings");
        self.shape[level]
    }

    /// The ring geometry at `level`.
    #[must_use]
    pub fn layout(&self, level: usize) -> &RingLayout {
        &self.layouts[level]
    }

    /// The ring configuration `layout(level)` was built from: the level's
    /// dimension plus one uplink position (except at the root, which is
    /// only widened to the 2-node ring minimum).
    #[must_use]
    pub fn level_config(&self, level: usize) -> RingConfig {
        let dim = self.shape[level];
        let nodes = if level + 1 == self.shape.len() { dim.max(2) } else { dim + 1 };
        RingConfig { nodes, ..self.base }
    }

    /// The link/slot parameters the topology was built from.
    #[must_use]
    pub fn base(&self) -> &RingConfig {
        &self.base
    }

    /// How many leaf rings one level-`level` subtree covers.
    #[must_use]
    pub fn leafs_per_subtree(&self, level: usize) -> usize {
        self.shape[1..=level].iter().product()
    }

    /// Which leaf ring hosts `node` (nodes are numbered ring-major).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn ring_of(&self, node: NodeId) -> usize {
        assert!(node.index() < self.total_nodes(), "{node} out of range");
        node.index() / self.shape[0]
    }

    /// Whether two nodes share a leaf ring.
    #[must_use]
    pub fn same_ring(&self, a: NodeId, b: NodeId) -> bool {
        self.ring_of(a) == self.ring_of(b)
    }

    /// The index of the level-`level` ring whose subtree contains
    /// `leaf_ring`.
    #[must_use]
    pub fn ancestor_at(&self, leaf_ring: usize, level: usize) -> usize {
        leaf_ring / self.leafs_per_subtree(level)
    }

    /// The path of ring indices containing `leaf_ring`, one per level,
    /// leaves first.
    #[must_use]
    pub fn path_of(&self, leaf_ring: usize) -> Vec<usize> {
        (0..self.levels()).map(|l| self.ancestor_at(leaf_ring, l)).collect()
    }

    /// The lowest tree level whose rings cover both leaf rings (0 when they
    /// are the same ring).
    #[must_use]
    pub fn meet_level(&self, leaf_a: usize, leaf_b: usize) -> usize {
        (0..self.levels())
            .find(|&l| self.ancestor_at(leaf_a, l) == self.ancestor_at(leaf_b, l))
            .expect("the root covers every leaf")
    }

    /// Round-trip time of one ring at `level`.
    #[must_use]
    pub fn round_trip(&self, level: usize) -> Time {
        self.base.clock_period * self.layouts[level].stages() as u64
    }

    /// Round-trip time of the equivalent flat ring with the same total
    /// processor count (the baseline every tree competes against).
    #[must_use]
    pub fn flat_equivalent_round_trip(&self) -> Time {
        self.base.clock_period * self.flat_layout.stages() as u64
    }

    /// Contention-free time for a snooping probe to resolve a transaction
    /// whose home shares the requester's leaf ring: one leaf revolution.
    #[must_use]
    pub fn intra_ring_probe_time(&self) -> Time {
        self.round_trip(0)
    }

    /// Contention-free probe time between two leaf rings under KSR1-style
    /// bridge filters: a full revolution of every ring on the tree path —
    /// the origin leaf, each ring up to and including their meet ring, and
    /// each ring back down to the home leaf.
    #[must_use]
    pub fn probe_time_between(&self, leaf_a: usize, leaf_b: usize) -> Time {
        let meet = self.meet_level(leaf_a, leaf_b);
        if meet == 0 {
            return self.intra_ring_probe_time();
        }
        let mut t = self.round_trip(meet);
        for level in 0..meet {
            t += self.round_trip(level) * 2;
        }
        t
    }

    /// Contention-free probe time for the farthest leaf pair (the path
    /// through the root). Matches the classic two-level
    /// `local + global + local` figure.
    #[must_use]
    pub fn inter_ring_probe_time(&self) -> Time {
        self.probe_time_between(0, self.leaf_rings() - 1)
    }

    /// Expected contention-free travel time of a data reply on the farthest
    /// path: half of each traversed ring.
    #[must_use]
    pub fn inter_ring_reply_time(&self) -> Time {
        self.inter_ring_probe_time() / 2
    }

    /// Expected contention-free travel time of a reply that stays within one
    /// leaf ring: half a revolution.
    #[must_use]
    pub fn intra_ring_reply_time(&self) -> Time {
        self.round_trip(0) / 2
    }

    /// Probability that a uniformly placed home lands in the requester's
    /// leaf ring (1.0 for a flat ring).
    #[must_use]
    pub fn uniform_locality(&self) -> f64 {
        1.0 / self.leaf_rings() as f64
    }

    /// Maps an open-loop per-processor reference budget onto the closed-loop
    /// transaction budget the network engine runs: one coherence transaction
    /// per [`REFS_PER_TXN`] references, at least one.
    #[must_use]
    pub fn txn_budget(&self, data_refs_per_proc: u64) -> u64 {
        (data_refs_per_proc / REFS_PER_TXN).max(1)
    }
}

/// Most balanced factorisation of `procs` into `levels` dimensions ≥ 2,
/// sorted descending so larger dimensions sit towards the leaves. For two
/// levels this reproduces the historical `balanced_split` (largest divisor
/// `d ≤ √procs`, returned as `[procs / d, d]`).
fn balanced_dims(levels: usize, procs: usize) -> Result<Vec<usize>, ConfigError> {
    match levels {
        1 => {
            if procs < 2 {
                return Err(ConfigError::new("procs", "a flat ring needs at least 2 processors"));
            }
            Ok(vec![procs])
        }
        2 => {
            let mut best = None;
            let mut d = 2;
            while d * d <= procs {
                if procs.is_multiple_of(d) {
                    best = Some(vec![procs / d, d]);
                }
                d += 1;
            }
            best.ok_or_else(|| {
                ConfigError::new(
                    "procs",
                    "the hierarchy network needs a composite processor count \
                     (local rings × nodes per ring, both at least 2)",
                )
            })
        }
        3 => {
            // Smallest spread between the extreme dimensions wins; ties go
            // to the flattest leaf (largest per-leaf count).
            let mut best: Option<Vec<usize>> = None;
            let mut a = 2;
            while a * a * a <= procs {
                if procs.is_multiple_of(a) {
                    let rest = procs / a;
                    let mut b = a;
                    while b * b <= rest {
                        if rest.is_multiple_of(b) {
                            let cand = vec![rest / b, b, a];
                            let spread = |v: &Vec<usize>| v[0] - v[2];
                            if best.as_ref().is_none_or(|cur| spread(&cand) < spread(cur)) {
                                best = Some(cand);
                            }
                        }
                        b += 1;
                    }
                }
                a += 1;
            }
            best.ok_or_else(|| {
                ConfigError::new(
                    "procs",
                    "a three-level hierarchy needs a processor count expressible \
                     as a product of three factors, each at least 2",
                )
            })
        }
        _ => Err(ConfigError::new("levels", "balanced topologies support 1 to 3 levels")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_ring_without_bridges() {
        let t = RingTopology::flat(16).unwrap();
        assert_eq!(t.levels(), 1);
        assert_eq!(t.leaf_rings(), 1);
        assert_eq!(t.total_nodes(), 16);
        // No uplink position: the single ring is exactly the flat ring.
        assert_eq!(t.layout(0).nodes(), 16);
        assert_eq!(t.round_trip(0), t.flat_equivalent_round_trip());
        assert!((t.uniform_locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_level_matches_the_classic_hierarchy_geometry() {
        let t = RingTopology::two_level(8, 8).unwrap();
        assert_eq!(t.total_nodes(), 64);
        // Leaf rings: 9 interfaces -> 30 stages; root: 8 bridges -> 30.
        assert_eq!(t.layout(0).stages(), 30);
        assert_eq!(t.layout(1).stages(), 30);
        assert_eq!(t.round_trip(0), Time::from_ns(60));
        assert_eq!(t.inter_ring_probe_time(), Time::from_ns(180));
        assert_eq!(t.flat_equivalent_round_trip(), Time::from_ns(400));
    }

    #[test]
    fn three_level_paths_and_subtrees() {
        let t = RingTopology::three_level(4, 4, 4).unwrap();
        assert_eq!(t.total_nodes(), 64);
        assert_eq!(t.leaf_rings(), 16);
        assert_eq!(t.rings_at(1), 4);
        assert_eq!(t.rings_at(2), 1);
        // Leaf ring 13 sits in group 3.
        assert_eq!(t.path_of(13), vec![13, 3, 0]);
        assert_eq!(t.meet_level(13, 12), 1); // same group
        assert_eq!(t.meet_level(13, 2), 2); // through the root
        assert_eq!(t.meet_level(5, 5), 0);
        // Mid rings carry 4 bridge positions + 1 uplink.
        assert_eq!(t.layout(1).nodes(), 5);
        // Cross-group probe: leaf + mid + root + mid + leaf revolutions.
        let full = t.round_trip(2) + (t.round_trip(0) + t.round_trip(1)) * 2;
        assert_eq!(t.inter_ring_probe_time(), full);
        // Same-group inter-ring probe is cheaper than cross-group.
        assert!(t.probe_time_between(12, 13) < t.inter_ring_probe_time());
    }

    #[test]
    fn balanced_reproduces_the_historic_two_level_split() {
        assert_eq!(RingTopology::balanced(2, 16).unwrap().shape(), &[4, 4]);
        assert_eq!(RingTopology::balanced(2, 8).unwrap().shape(), &[4, 2]);
        assert_eq!(RingTopology::balanced(2, 12).unwrap().shape(), &[4, 3]);
        assert!(RingTopology::balanced(2, 13).is_err());
        assert!(RingTopology::balanced(2, 2).is_err());
    }

    #[test]
    fn balanced_three_level_prefers_cubes() {
        assert_eq!(RingTopology::balanced(3, 64).unwrap().shape(), &[4, 4, 4]);
        assert_eq!(RingTopology::balanced(3, 8).unwrap().shape(), &[2, 2, 2]);
        assert_eq!(RingTopology::balanced(3, 16).unwrap().shape(), &[4, 2, 2]);
        assert_eq!(RingTopology::balanced(3, 24).unwrap().shape(), &[4, 3, 2]);
        assert!(RingTopology::balanced(3, 4).is_err());
        assert!(RingTopology::balanced(3, 6).is_err()); // only two prime factors
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(RingTopology::from_shape(&[], RingConfig::standard_500mhz(2)).is_err());
        assert!(RingTopology::two_level(1, 8).is_err());
        assert!(RingTopology::two_level(8, 1).is_err());
        assert!(RingTopology::two_level(9, 8).is_err()); // 72 > 64
        assert!(RingTopology::three_level(2, 2, 1).is_err());
        assert!(RingTopology::two_level(2, 2).is_ok());
    }

    #[test]
    fn txn_budget_floor_is_one() {
        let t = RingTopology::two_level(2, 2).unwrap();
        assert_eq!(t.txn_budget(4_000), 80);
        assert_eq!(t.txn_budget(10), 1);
    }

    #[test]
    fn ring_membership() {
        let t = RingTopology::two_level(4, 4).unwrap();
        assert_eq!(t.ring_of(NodeId::new(0)), 0);
        assert_eq!(t.ring_of(NodeId::new(15)), 3);
        assert!(t.same_ring(NodeId::new(5), NodeId::new(6)));
        assert!(!t.same_ring(NodeId::new(3), NodeId::new(4)));
    }
}
