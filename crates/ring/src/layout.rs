use serde::{Deserialize, Serialize};

use ringsim_types::NodeId;

use crate::config::{Parity, RingConfig};

/// What a slot may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotKind {
    /// A probe slot for even-numbered blocks.
    ProbeEven,
    /// A probe slot for odd-numbered blocks.
    ProbeOdd,
    /// A probe slot that accepts either parity (single-probe frames).
    ProbeAny,
    /// A block slot (header + cache block).
    Block,
}

impl SlotKind {
    /// `true` for any of the probe kinds.
    #[must_use]
    pub const fn is_probe(self) -> bool {
        !matches!(self, SlotKind::Block)
    }

    /// The parity filter of a probe slot (`Any` for block slots, which do not
    /// filter by parity).
    #[must_use]
    pub const fn parity(self) -> Parity {
        match self {
            SlotKind::ProbeEven => Parity::Even,
            SlotKind::ProbeOdd => Parity::Odd,
            SlotKind::ProbeAny | SlotKind::Block => Parity::Any,
        }
    }
}

/// Index of a slot in the circulating frame structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId(pub(crate) usize);

impl SlotId {
    /// Raw index, in `0..layout.slot_count()`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Static description of one slot: kind, starting stage (at cycle 0) and
/// length in stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSpec {
    /// What the slot carries.
    pub kind: SlotKind,
    /// Stage occupied by the slot header at ring cycle 0.
    pub start_stage: usize,
    /// Slot length in pipeline stages.
    pub stages: usize,
}

/// Derived geometry of a slotted ring: total stages, node interface
/// positions, and the slot map.
///
/// The ring pipeline circulates: the header of slot `s` is at stage
/// `(s.start_stage + cycle) mod stages`. Node `i`'s interface sits at stage
/// `i * stages_per_node`, so a slot header "arrives at" node `i` on every
/// cycle where those coincide.
///
/// # Examples
///
/// ```
/// use ringsim_ring::RingConfig;
/// use ringsim_types::NodeId;
///
/// let layout = RingConfig::standard_500mhz(8).layout().unwrap();
/// assert_eq!(layout.stages(), 30);
/// assert_eq!(layout.frames(), 3);
/// // A probe inserted at P1 returns to P1 after a full round trip:
/// assert_eq!(layout.stage_distance(NodeId::new(1), NodeId::new(1)), 30);
/// assert_eq!(layout.stage_distance(NodeId::new(1), NodeId::new(4)), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingLayout {
    stages: usize,
    frame_stages: usize,
    frames: usize,
    nodes: usize,
    stages_per_node: usize,
    slots: Vec<SlotSpec>,
    /// `start_stage -> slot id` lookup.
    header_at_stage: Vec<Option<SlotId>>,
}

impl RingLayout {
    pub(crate) fn from_config(cfg: &RingConfig) -> Self {
        let frame_stages = cfg.frame_stages();
        let node_stages = cfg.nodes * cfg.stages_per_node;
        // Pad to an integer number of frames (paper: 24 node stages + 6
        // padding stages = 3 frames for the 8-node ring).
        let frames = node_stages.div_ceil(frame_stages);
        let stages = frames * frame_stages;

        let probe_stages = cfg.probe_stages();
        let block_stages = cfg.block_slot_stages();
        let mut slots =
            Vec::with_capacity(frames * (cfg.probe_slots_per_frame + cfg.block_slots_per_frame));
        for f in 0..frames {
            let mut cursor = f * frame_stages;
            for p in 0..cfg.probe_slots_per_frame {
                let kind = if cfg.probe_slots_per_frame == 1 {
                    SlotKind::ProbeAny
                } else if p % 2 == 0 {
                    SlotKind::ProbeEven
                } else {
                    SlotKind::ProbeOdd
                };
                slots.push(SlotSpec { kind, start_stage: cursor, stages: probe_stages });
                cursor += probe_stages;
            }
            for _ in 0..cfg.block_slots_per_frame {
                slots.push(SlotSpec {
                    kind: SlotKind::Block,
                    start_stage: cursor,
                    stages: block_stages,
                });
                cursor += block_stages;
            }
        }

        let mut header_at_stage = vec![None; stages];
        for (i, spec) in slots.iter().enumerate() {
            header_at_stage[spec.start_stage] = Some(SlotId(i));
        }

        Self {
            stages,
            frame_stages,
            frames,
            nodes: cfg.nodes,
            stages_per_node: cfg.stages_per_node,
            slots,
            header_at_stage,
        }
    }

    /// Total pipeline stages around the ring.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Stages per frame.
    #[must_use]
    pub fn frame_stages(&self) -> usize {
        self.frame_stages
    }

    /// Number of frames circulating.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ring cycles for one complete revolution (equals [`RingLayout::stages`]).
    #[must_use]
    pub fn round_trip_cycles(&self) -> usize {
        self.stages
    }

    /// Number of slots circulating.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots of each probe kind / block kind that match `kind`.
    #[must_use]
    pub fn slots_of_kind(&self, kind: SlotKind) -> usize {
        self.slots.iter().filter(|s| s.kind == kind).count()
    }

    /// Static description of slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn slot_spec(&self, id: SlotId) -> SlotSpec {
        self.slots[id.0]
    }

    /// All slot specs, in frame order.
    #[must_use]
    pub fn slot_specs(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// Stage of node `n`'s interface.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this ring.
    #[must_use]
    pub fn node_stage(&self, n: NodeId) -> usize {
        assert!(n.index() < self.nodes, "{n} not on this ring");
        n.index() * self.stages_per_node
    }

    /// Which slot's header sits at node `n`'s interface at ring cycle
    /// `cycle`, if any.
    #[must_use]
    pub fn arrival_at(&self, n: NodeId, cycle: u64) -> Option<SlotId> {
        let pos = self.node_stage(n);
        let stage = (pos + self.stages - (cycle % self.stages as u64) as usize) % self.stages;
        self.header_at_stage[stage]
    }

    /// Precomputed arrival lists: entry `phase` holds every
    /// `(node, slot)` pair for which a slot header sits at the node's
    /// interface when `cycle % stages() == phase`, in ascending node
    /// order.
    ///
    /// [`RingLayout::arrival_at`] is periodic in the stage count, so a
    /// cycle-stepped simulator can replace its per-cycle all-nodes arrival
    /// scan with one indexed lookup into this table — iterating only the
    /// slots that actually arrive somewhere (≈ `slot_count()` entries per
    /// cycle instead of `nodes()` probes). The table is derived state, not
    /// part of the layout's identity; it is rebuilt on demand and never
    /// serialised.
    #[must_use]
    pub fn arrival_schedule(&self) -> Vec<Vec<(NodeId, SlotId)>> {
        (0..self.stages as u64)
            .map(|phase| {
                (0..self.nodes)
                    .filter_map(|n| {
                        let node = NodeId::new(n);
                        self.arrival_at(node, phase).map(|slot| (node, slot))
                    })
                    .collect()
            })
            .collect()
    }

    /// Stages a message travels from node `from` to node `to`; a full
    /// revolution (`stages()`) when `from == to` (e.g. a snooping probe that
    /// is removed by its requester).
    #[must_use]
    pub fn stage_distance(&self, from: NodeId, to: NodeId) -> usize {
        let d = (self.node_stage(to) + self.stages - self.node_stage(from)) % self.stages;
        if d == 0 {
            self.stages
        } else {
            d
        }
    }

    /// Number of complete ring traversals needed by a closed message path
    /// (`path[0] -> path[1] -> ... -> path[last] -> path[0]`).
    ///
    /// Each hop between distinct nodes costs its ring distance; a hop from a
    /// node to itself counts as a deliberate full revolution (matching
    /// [`RingLayout::stage_distance`]), so `&[r]` describes a snooping probe
    /// that circles back to its requester (1 traversal) and `&[r, h, h]`
    /// describes a request to home plus a home-initiated multicast round
    /// (2 traversals). This is the quantity tabulated in the paper's
    /// Table 1. Because the path returns to its starting node, the total
    /// stage distance is always a whole number of revolutions.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use ringsim_ring::RingConfig;
    /// use ringsim_types::NodeId;
    ///
    /// let layout = RingConfig::standard_500mhz(16).layout().unwrap();
    /// let (r, h, d) = (NodeId::new(2), NodeId::new(7), NodeId::new(12));
    /// // requester -> home -> dirty -> requester, nodes in ring order: 1 traversal
    /// assert_eq!(layout.closed_path_traversals(&[r, h, d]), 1);
    /// // dirty node "on the path" between requester and home: 2 traversals
    /// assert_eq!(layout.closed_path_traversals(&[r, d, h]), 2);
    /// ```
    #[must_use]
    pub fn closed_path_traversals(&self, path: &[NodeId]) -> usize {
        assert!(!path.is_empty(), "path must contain at least one node");
        let mut total = 0usize;
        for i in 0..path.len() {
            let from = path[i];
            let to = path[(i + 1) % path.len()];
            total += self.stage_distance(from, to);
        }
        debug_assert_eq!(total % self.stages, 0, "closed path must be whole revolutions");
        total / self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(nodes: usize) -> RingLayout {
        RingConfig::standard_500mhz(nodes).layout().unwrap()
    }

    #[test]
    fn paper_ring_sizes() {
        // Paper §4.2: 8 nodes -> 24 stages padded with 6 to 30 (3 frames).
        assert_eq!(layout(8).stages(), 30);
        assert_eq!(layout(8).frames(), 3);
        assert_eq!(layout(16).stages(), 50);
        assert_eq!(layout(32).stages(), 100);
        assert_eq!(layout(64).stages(), 200);
    }

    #[test]
    fn slot_map_covers_frames() {
        let l = layout(8);
        assert_eq!(l.slot_count(), 9); // 3 frames x (2 probes + 1 block)
        assert_eq!(l.slots_of_kind(SlotKind::ProbeEven), 3);
        assert_eq!(l.slots_of_kind(SlotKind::ProbeOdd), 3);
        assert_eq!(l.slots_of_kind(SlotKind::Block), 3);
        // Headers at expected stage offsets within each frame (0, 2, 4).
        let starts: Vec<usize> = l.slot_specs().iter().map(|s| s.start_stage).collect();
        assert_eq!(starts, vec![0, 2, 4, 10, 12, 14, 20, 22, 24]);
    }

    #[test]
    fn arrival_rotation() {
        let l = layout(8);
        // At cycle 0, slot 0's header is at stage 0 = node 0's interface.
        assert_eq!(l.arrival_at(NodeId::new(0), 0), Some(SlotId(0)));
        // One cycle later the header has moved downstream by one stage, so
        // it is no longer at any node boundary adjacent to stage 1 3-stage
        // spacing; node 1 (stage 3) sees it at cycle 3.
        assert_eq!(l.arrival_at(NodeId::new(1), 3), Some(SlotId(0)));
        // A full revolution brings it back.
        assert_eq!(l.arrival_at(NodeId::new(0), 30), Some(SlotId(0)));
    }

    #[test]
    fn every_slot_visits_every_node_once_per_revolution() {
        let l = layout(8);
        for n in 0..8 {
            let node = NodeId::new(n);
            let mut seen = vec![0usize; l.slot_count()];
            for c in 0..l.stages() as u64 {
                if let Some(s) = l.arrival_at(node, c) {
                    seen[s.index()] += 1;
                }
            }
            assert!(seen.iter().all(|&k| k == 1), "node {n}: {seen:?}");
        }
    }

    #[test]
    fn arrival_schedule_matches_pointwise_queries() {
        for nodes in [8, 16] {
            let l = layout(nodes);
            let sched = l.arrival_schedule();
            assert_eq!(sched.len(), l.stages());
            // Identical pairs, in ascending node order, for three full
            // revolutions (periodicity included).
            for cycle in 0..(3 * l.stages()) as u64 {
                let phase = (cycle % l.stages() as u64) as usize;
                let direct: Vec<(NodeId, SlotId)> = (0..nodes)
                    .filter_map(|n| {
                        let node = NodeId::new(n);
                        l.arrival_at(node, cycle).map(|s| (node, s))
                    })
                    .collect();
                assert_eq!(sched[phase], direct, "nodes={nodes} cycle={cycle}");
            }
        }
    }

    #[test]
    fn distances_sum_to_revolutions() {
        let l = layout(16);
        let a = NodeId::new(3);
        let b = NodeId::new(11);
        assert_eq!(l.stage_distance(a, b) + l.stage_distance(b, a), l.stages());
        assert_eq!(l.stage_distance(a, a), l.stages());
    }

    #[test]
    fn traversal_counting_matches_paper_figure2() {
        let l = layout(16);
        let requester = NodeId::new(0);
        let home = NodeId::new(6);
        let dirty_far = NodeId::new(11); // beyond home: fortunate
        let dirty_near = NodeId::new(3); // between requester and home: unfortunate
        assert_eq!(l.closed_path_traversals(&[requester, home]), 1);
        assert_eq!(l.closed_path_traversals(&[requester, home, dirty_far]), 1);
        assert_eq!(l.closed_path_traversals(&[requester, home, dirty_near]), 2);
        // Multicast invalidation: requester -> home -> full circle -> home -> requester.
        assert_eq!(l.closed_path_traversals(&[requester, home, home]), 2);
        // Snooping probe: full circle back to the requester.
        assert_eq!(l.closed_path_traversals(&[requester]), 1);
    }

    #[test]
    fn single_probe_frames_use_any_parity() {
        let cfg = RingConfig { probe_slots_per_frame: 1, ..RingConfig::standard_500mhz(8) };
        let l = cfg.layout().unwrap();
        assert!(l.slots_of_kind(SlotKind::ProbeAny) > 0);
        assert_eq!(l.slots_of_kind(SlotKind::ProbeEven), 0);
    }
}
