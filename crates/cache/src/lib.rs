//! Direct-mapped write-back coherent cache model.
//!
//! The paper evaluates 128 KB direct-mapped data caches with 16-byte blocks
//! and a three-state write-invalidate protocol. A cache line is in one of
//! three states ([`LineState`]): `Inv` (not present), `Rs` (read-shared) or
//! `We` (write-exclusive, i.e. dirty). This crate models only the
//! processor-side array; the coherence *protocol* (who supplies data, when
//! invalidations travel) lives in `ringsim-proto` and drives the cache
//! through the snoop methods.
//!
//! The access path is split in two because the simulators are timed: a
//! [`Cache::classify`] call decides hit/upgrade/miss without mutating
//! anything, and the fill ([`Cache::fill`]) or promotion
//! ([`Cache::promote`]) happens later, when the coherence transaction
//! completes.
//!
//! # Examples
//!
//! ```
//! use ringsim_cache::{Cache, CacheConfig, LineState, AccessClass};
//! use ringsim_types::{AccessKind, BlockAddr};
//!
//! let mut cache = Cache::new(CacheConfig::paper_default()).unwrap();
//! let b = BlockAddr::new(0x10);
//! assert_eq!(cache.classify(b, AccessKind::Read), AccessClass::Miss);
//! cache.fill(b, LineState::Rs);
//! assert_eq!(cache.classify(b, AccessKind::Read), AccessClass::Hit);
//! assert_eq!(cache.classify(b, AccessKind::Write), AccessClass::Upgrade);
//! cache.promote(b);
//! assert_eq!(cache.classify(b, AccessKind::Write), AccessClass::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use ringsim_types::{AccessKind, BlockAddr, ConfigError};

/// Coherence state of one cache line (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// Block not present.
    Inv,
    /// Read-Shared: present read-only, memory is up to date.
    Rs,
    /// Write-Exclusive: present read-write; this cache owns the only valid
    /// copy and must supply it / write it back.
    We,
}

impl LineState {
    /// `true` for any valid (non-`Inv`) state.
    #[must_use]
    pub const fn is_valid(self) -> bool {
        !matches!(self, LineState::Inv)
    }

    /// `true` for `We`.
    #[must_use]
    pub const fn is_dirty(self) -> bool {
        matches!(self, LineState::We)
    }
}

/// Classification of a processor access against the current cache contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Read hit on `Rs`/`We`, or write hit on `We`: no coherence action.
    Hit,
    /// Write to a block held in `Rs`: the processor must obtain write
    /// permission (an *invalidation* transaction in the paper's terminology)
    /// but no data transfer is needed.
    Upgrade,
    /// Block absent (or present under a conflicting tag): a miss that needs
    /// a data transfer.
    Miss,
}

/// Geometry of a direct-mapped cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// The configuration used throughout the paper's evaluation: 128 KB
    /// direct-mapped with 16-byte blocks.
    #[must_use]
    pub const fn paper_default() -> Self {
        Self { size_bytes: 128 * 1024, block_bytes: 16 }
    }

    /// Number of lines in the cache.
    #[must_use]
    pub const fn lines(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either size is zero or not a power of
    /// two, or the block does not fit in the cache.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.size_bytes == 0 || !self.size_bytes.is_power_of_two() {
            return Err(ConfigError::new("size_bytes", "must be a non-zero power of two"));
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::new("block_bytes", "must be a non-zero power of two"));
        }
        if self.block_bytes > self.size_bytes {
            return Err(ConfigError::new("block_bytes", "block larger than cache"));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: u64,
    state: LineState,
}

/// Per-cache event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read or write hits.
    pub hits: u64,
    /// Misses (including cold and conflict misses).
    pub misses: u64,
    /// Write hits on `Rs` lines (coherence upgrades).
    pub upgrades: u64,
    /// Lines invalidated by remote coherence activity.
    pub snoop_invalidations: u64,
    /// `We` lines downgraded to `Rs` by remote read misses.
    pub snoop_downgrades: u64,
    /// Dirty lines evicted (write-backs).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all classified accesses (upgrades count as accesses
    /// but not as misses, matching the paper's Table 2).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.upgrades;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A direct-mapped write-back cache with three-state lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Option<Line>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-`Inv`) cache.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let lines = vec![None; cfg.lines() as usize];
        Ok(Self { cfg, lines, stats: CacheStats::default() })
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated event counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn slot(&self, block: BlockAddr) -> (usize, u64) {
        // Both sizes are validated powers of two, so the line count is one
        // as well: index and tag are a mask and a shift, avoiding two u64
        // divisions on a path every access classification goes through.
        let shift = self.cfg.size_bytes.trailing_zeros() - self.cfg.block_bytes.trailing_zeros();
        debug_assert_eq!(1u64 << shift, self.cfg.lines());
        let idx = (block.raw() & ((1u64 << shift) - 1)) as usize;
        let tag = block.raw() >> shift;
        (idx, tag)
    }

    /// Current state of `block` in this cache (`Inv` when absent).
    #[must_use]
    pub fn state_of(&self, block: BlockAddr) -> LineState {
        let (idx, tag) = self.slot(block);
        match self.lines[idx] {
            Some(line) if line.tag == tag => line.state,
            _ => LineState::Inv,
        }
    }

    /// Classifies an access *without* changing cache contents, and updates
    /// the hit/miss/upgrade counters.
    ///
    /// The caller performs the resulting coherence transaction (if any) and
    /// then calls [`Cache::fill`] or [`Cache::promote`].
    pub fn classify(&mut self, block: BlockAddr, kind: AccessKind) -> AccessClass {
        let class = self.peek(block, kind);
        match class {
            AccessClass::Hit => self.stats.hits += 1,
            AccessClass::Miss => self.stats.misses += 1,
            AccessClass::Upgrade => self.stats.upgrades += 1,
        }
        class
    }

    /// Like [`Cache::classify`] but without touching the statistics — used
    /// by lookahead code paths that only want to know whether an access
    /// would stall.
    #[must_use]
    pub fn peek(&self, block: BlockAddr, kind: AccessKind) -> AccessClass {
        match (self.state_of(block), kind) {
            (LineState::Inv, _) => AccessClass::Miss,
            (LineState::Rs, AccessKind::Write) => AccessClass::Upgrade,
            _ => AccessClass::Hit,
        }
    }

    /// Installs `block` in `state`, returning the victim line (block number
    /// and state) if a valid line had to be evicted. A `We` victim must be
    /// written back by the caller; the `writebacks` counter is bumped here.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Inv` (filling a line as invalid is a protocol
    /// bug).
    pub fn fill(&mut self, block: BlockAddr, state: LineState) -> Option<(BlockAddr, LineState)> {
        assert!(state.is_valid(), "cannot fill a line in Inv state");
        let (idx, tag) = self.slot(block);
        let lines = self.cfg.lines();
        let victim = match self.lines[idx] {
            Some(line) if line.tag != tag => {
                let victim_block = BlockAddr::new(line.tag * lines + idx as u64);
                if line.state.is_dirty() {
                    self.stats.writebacks += 1;
                }
                Some((victim_block, line.state))
            }
            _ => None,
        };
        self.lines[idx] = Some(Line { tag, state });
        victim
    }

    /// Promotes an `Rs` line to `We` after a successful upgrade transaction.
    ///
    /// Returns `false` (and leaves the cache unchanged) when the line is no
    /// longer present — a remote write may have invalidated it while the
    /// upgrade was in flight, in which case the access must be retried as a
    /// write miss.
    pub fn promote(&mut self, block: BlockAddr) -> bool {
        let (idx, tag) = self.slot(block);
        match &mut self.lines[idx] {
            Some(line) if line.tag == tag && line.state.is_valid() => {
                line.state = LineState::We;
                true
            }
            _ => false,
        }
    }

    /// Invalidates `block` if present (remote write miss / invalidation
    /// observed). Returns the state the line was in.
    pub fn snoop_invalidate(&mut self, block: BlockAddr) -> LineState {
        let (idx, tag) = self.slot(block);
        match self.lines[idx] {
            Some(line) if line.tag == tag && line.state.is_valid() => {
                self.lines[idx] = None;
                self.stats.snoop_invalidations += 1;
                line.state
            }
            _ => LineState::Inv,
        }
    }

    /// Downgrades a `We` line to `Rs` (remote read miss observed by the
    /// dirty node). Returns `true` when the line was indeed `We`.
    pub fn snoop_downgrade(&mut self, block: BlockAddr) -> bool {
        let (idx, tag) = self.slot(block);
        match &mut self.lines[idx] {
            Some(line) if line.tag == tag && line.state.is_dirty() => {
                line.state = LineState::Rs;
                self.stats.snoop_downgrades += 1;
                true
            }
            _ => false,
        }
    }

    /// Evicts `block` if present without recording a write-back (used by
    /// tests and by protocol paths that account for the write-back
    /// themselves). Returns the prior state.
    pub fn evict(&mut self, block: BlockAddr) -> LineState {
        let (idx, tag) = self.slot(block);
        match self.lines[idx] {
            Some(line) if line.tag == tag => {
                self.lines[idx] = None;
                line.state
            }
            _ => LineState::Inv,
        }
    }

    /// Iterates over all valid blocks currently cached, with their states.
    pub fn resident_blocks(&self) -> impl Iterator<Item = (BlockAddr, LineState)> + '_ {
        let lines = self.cfg.lines();
        self.lines.iter().enumerate().filter_map(move |(idx, line)| {
            line.map(|l| (BlockAddr::new(l.tag * lines + idx as u64), l.state))
        })
    }

    /// Number of valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().flatten().filter(|l| l.state.is_valid()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_types::AccessKind::{Read, Write};

    fn small() -> Cache {
        Cache::new(CacheConfig { size_bytes: 256, block_bytes: 16 }).unwrap()
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = CacheConfig::paper_default();
        assert_eq!(cfg.lines(), 8192);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig { size_bytes: 100, block_bytes: 16 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 128, block_bytes: 0 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 16, block_bytes: 64 }.validate().is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let b = BlockAddr::new(3);
        assert_eq!(c.classify(b, Read), AccessClass::Miss);
        assert_eq!(c.fill(b, LineState::Rs), None);
        assert_eq!(c.classify(b, Read), AccessClass::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_on_rs_is_upgrade() {
        let mut c = small();
        let b = BlockAddr::new(7);
        c.fill(b, LineState::Rs);
        assert_eq!(c.classify(b, Write), AccessClass::Upgrade);
        assert!(c.promote(b));
        assert_eq!(c.classify(b, Write), AccessClass::Hit);
        assert_eq!(c.state_of(b), LineState::We);
    }

    #[test]
    fn promote_fails_after_remote_invalidation() {
        let mut c = small();
        let b = BlockAddr::new(9);
        c.fill(b, LineState::Rs);
        assert_eq!(c.snoop_invalidate(b), LineState::Rs);
        assert!(!c.promote(b));
        assert_eq!(c.state_of(b), LineState::Inv);
    }

    #[test]
    fn conflict_eviction_reports_victim() {
        let mut c = small(); // 16 lines
        let a = BlockAddr::new(5);
        let b = BlockAddr::new(5 + 16); // same index, different tag
        c.fill(a, LineState::We);
        let victim = c.fill(b, LineState::Rs);
        assert_eq!(victim, Some((a, LineState::We)));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.state_of(a), LineState::Inv);
        assert_eq!(c.state_of(b), LineState::Rs);
    }

    #[test]
    fn refill_same_block_is_not_eviction() {
        let mut c = small();
        let a = BlockAddr::new(5);
        c.fill(a, LineState::Rs);
        assert_eq!(c.fill(a, LineState::We), None);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.state_of(a), LineState::We);
    }

    #[test]
    fn snoop_downgrade_only_hits_we() {
        let mut c = small();
        let a = BlockAddr::new(2);
        c.fill(a, LineState::Rs);
        assert!(!c.snoop_downgrade(a));
        c.promote(a);
        assert!(c.snoop_downgrade(a));
        assert_eq!(c.state_of(a), LineState::Rs);
        assert_eq!(c.stats().snoop_downgrades, 1);
    }

    #[test]
    fn snoop_invalidate_misses_are_noops() {
        let mut c = small();
        assert_eq!(c.snoop_invalidate(BlockAddr::new(77)), LineState::Inv);
        assert_eq!(c.stats().snoop_invalidations, 0);
    }

    #[test]
    fn resident_blocks_roundtrip() {
        let mut c = small();
        c.fill(BlockAddr::new(1), LineState::Rs);
        c.fill(BlockAddr::new(2), LineState::We);
        let mut resident: Vec<_> = c.resident_blocks().collect();
        resident.sort_by_key(|(b, _)| b.raw());
        assert_eq!(
            resident,
            vec![(BlockAddr::new(1), LineState::Rs), (BlockAddr::new(2), LineState::We)]
        );
        assert_eq!(c.valid_lines(), 2);
    }

    #[test]
    fn miss_rate_counts_upgrades_as_accesses() {
        let mut c = small();
        let b = BlockAddr::new(0);
        c.classify(b, Read); // miss
        c.fill(b, LineState::Rs);
        c.classify(b, Read); // hit
        c.classify(b, Write); // upgrade
        assert!((c.stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = small();
        let b = BlockAddr::new(0);
        assert_eq!(c.peek(b, Read), AccessClass::Miss);
        assert_eq!(c.stats().misses, 0);
        c.fill(b, LineState::Rs);
        assert_eq!(c.peek(b, Write), AccessClass::Upgrade);
        assert_eq!(c.stats().upgrades, 0);
    }

    #[test]
    fn evict_returns_prior_state() {
        let mut c = small();
        let b = BlockAddr::new(4);
        c.fill(b, LineState::We);
        assert_eq!(c.evict(b), LineState::We);
        assert_eq!(c.evict(b), LineState::Inv);
        assert_eq!(c.stats().writebacks, 0);
    }
}
