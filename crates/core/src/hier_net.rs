//! Message-level timed simulation of a two-level slotted-ring hierarchy.
//!
//! This validates the hierarchical analytical model
//! (`ringsim_analytic::HierRingModel`) by actually circulating messages
//! through real [`SlotRing`]s: every local ring and the global ring are
//! slot machines in lockstep, inter-ring interfaces (IRIs) forward between
//! them with queues, and nodes run a closed loop of *think → transact →
//! wait for reply*. Coherence details are abstracted to a single request/
//! reply transaction shape (the protocol level is validated separately by
//! the flat-ring system simulator); what is measured here is exactly what
//! the hierarchy model predicts — slot contention and multi-level latency.
//!
//! Transaction shapes (KSR1-style IRI filters):
//!
//! * **intra-ring**: a probe makes one full local revolution (snooped by
//!   the home on the way), the home replies after the 140 ns access with a
//!   block message to the requester.
//! * **inter-ring**: the probe makes a full local revolution (the IRI
//!   copies it as it passes), a full global revolution (the target ring's
//!   IRI copies it), and a full remote-ring revolution; the reply hops
//!   home → IRI → IRI → requester through block slots.

use ringsim_obs::{LatencyHistogram, Obs, ObsConfig, Recorder};
use ringsim_proto::{MsgClass, MsgKind, RingMessage};
use ringsim_ring::{RingConfig, RingHierarchy, SlotId, SlotKind, SlotRing};
use ringsim_types::rng::Xoshiro256;
use ringsim_types::stats::RunningMean;
use ringsim_types::{BlockAddr, CoherenceEvents, ConfigError, NodeId, Time};

use crate::collections::RingBuf;
use crate::report::{summarize_nodes, ClassLatencies, NodeMeasure, SimReport};
use crate::sanitize;

/// Configuration of a hierarchy network simulation.
#[derive(Debug, Clone)]
pub struct HierNetConfig {
    /// The two-level topology.
    pub hier: RingHierarchy,
    /// Mean think time between a node's transactions.
    pub think_time: Time,
    /// Probability that a transaction's home is in the requester's ring
    /// (uniform placement would be `1 / local_rings`).
    pub locality: f64,
    /// Memory access time at the home (paper: 140 ns).
    pub mem_latency: Time,
    /// Transactions each node completes (after which it stops).
    pub txns_per_node: u64,
    /// PRNG seed for think times, home choices and block parities.
    pub seed: u64,
}

impl HierNetConfig {
    /// A baseline configuration for the given topology.
    #[must_use]
    pub fn new(hier: RingHierarchy) -> Self {
        let locality = hier.uniform_locality();
        Self {
            hier,
            think_time: Time::from_ns(400),
            locality,
            mem_latency: Time::from_ns(140),
            txns_per_node: 400,
            seed: 0xB10C,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for out-of-range values.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.think_time.is_zero() {
            return Err(ConfigError::new("think_time", "must be non-zero"));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(ConfigError::new("locality", "must be in [0, 1]"));
        }
        if self.txns_per_node == 0 {
            return Err(ConfigError::new("txns_per_node", "must be non-zero"));
        }
        Ok(())
    }
}

/// Results of a hierarchy network simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct HierNetReport {
    /// Mean end-to-end transaction latency (ns), issue to reply.
    pub latency: RunningMean,
    /// Full latency distribution (log2 buckets) over the same samples.
    pub latency_hist: LatencyHistogram,
    /// Combined slot utilisation of the local rings.
    pub local_util: f64,
    /// Slot utilisation of the global ring.
    pub global_util: f64,
    /// Completed transactions.
    pub completed: u64,
    /// Simulated time.
    pub sim_end: Time,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Thinking {
        until: Time,
    },
    /// Waiting to insert the initial probe / waiting for the reply.
    Waiting,
    Done,
}

#[derive(Debug)]
struct NetNode {
    phase: Phase,
    issued: u64,
    started: Time,
    /// Cumulative issue-to-reply wait over all its transactions.
    wait_total: Time,
    /// When the node retired (entered [`Phase::Done`]).
    finished: Time,
    /// Its own end-to-end latency distribution.
    lat_hist: LatencyHistogram,
    /// Pending local-ring insertions for this node.
    out_q: RingBuf<RingMessage>,
    rng: Xoshiro256,
}

/// Per-message routing plan, encoded in the `RingMessage` fields:
/// `block`'s low bits carry the target ring and requester so the IRIs can
/// route without extra state.
#[derive(Debug)]
struct Iri {
    /// Messages waiting to enter the global ring.
    to_global: RingBuf<RingMessage>,
    /// Messages waiting to enter this IRI's local ring.
    to_local: RingBuf<RingMessage>,
}

/// The message-level hierarchy simulator.
///
/// # Examples
///
/// ```
/// use ringsim_core::{HierNetConfig, HierNetSim};
/// use ringsim_ring::RingHierarchy;
///
/// let hier = RingHierarchy::new(4, 4).unwrap();
/// let mut cfg = HierNetConfig::new(hier);
/// cfg.txns_per_node = 50;
/// let report = HierNetSim::new(cfg).unwrap().run();
/// assert_eq!(report.completed, 16 * 50);
/// assert!(report.latency.mean() > 140.0);
/// ```
#[derive(Debug)]
pub struct HierNetSim {
    cfg: HierNetConfig,
    locals: Vec<SlotRing<RingMessage>>,
    global: SlotRing<RingMessage>,
    iris: Vec<Iri>,
    nodes: Vec<NetNode>,
    latency: RunningMean,
    latency_hist: LatencyHistogram,
    intra_hist: LatencyHistogram,
    inter_hist: LatencyHistogram,
    completed: u64,
    max_cycles: u64,
    debug: bool,
    obs: Obs,
    obs_hier_tl: usize,
    /// Earliest cycle each node could act in the think/issue step
    /// (`u64::MAX` while waiting on a reply or finished). Lets the
    /// per-cycle loop skip nodes that provably cannot move.
    wake_at: Vec<u64>,
    /// Phase-indexed header arrivals, shared by the (identically
    /// configured) local rings: `local_sched[cycle % stages]` lists the
    /// `(position, slot)` pairs with an arrival that cycle.
    local_sched: Vec<Vec<(NodeId, SlotId)>>,
    /// Phase-indexed header arrivals on the global ring.
    global_sched: Vec<Vec<(NodeId, SlotId)>>,
}

impl HierNetSim {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: HierNetConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let base = *cfg.hier.base();
        let local_cfg = RingConfig { nodes: cfg.hier.nodes_per_ring() + 1, ..base };
        let global_cfg = RingConfig { nodes: cfg.hier.local_rings().max(2), ..base };
        let locals = (0..cfg.hier.local_rings())
            .map(|_| SlotRing::new(local_cfg))
            .collect::<Result<Vec<_>, _>>()?;
        let global = SlotRing::new(global_cfg)?;
        let iris = (0..cfg.hier.local_rings())
            .map(|_| Iri { to_global: RingBuf::new(), to_local: RingBuf::new() })
            .collect();
        let local_sched =
            locals.first().map(|r: &SlotRing<RingMessage>| r.layout().arrival_schedule());
        let global_sched = global.layout().arrival_schedule();
        let mut root = Xoshiro256::seed_from_u64(cfg.seed);
        let nodes = (0..cfg.hier.total_nodes())
            .map(|i| NetNode {
                phase: Phase::Thinking { until: Time::from_ps(1 + i as u64 * 137) },
                issued: 0,
                started: Time::ZERO,
                wait_total: Time::ZERO,
                finished: Time::ZERO,
                lat_hist: LatencyHistogram::new(),
                out_q: RingBuf::new(),
                rng: root.fork(i as u64),
            })
            .collect();
        let cfg_total_nodes = cfg.hier.total_nodes();
        Ok(Self {
            cfg,
            locals,
            global,
            iris,
            nodes,
            latency: RunningMean::default(),
            latency_hist: LatencyHistogram::new(),
            intra_hist: LatencyHistogram::new(),
            inter_hist: LatencyHistogram::new(),
            completed: 0,
            max_cycles: 500_000_000,
            debug: false,
            obs: Obs::disabled(),
            obs_hier_tl: usize::MAX,
            wake_at: vec![0; cfg_total_nodes],
            local_sched: local_sched.unwrap_or_default(),
            global_sched,
        })
    }

    /// Enables telemetry for this run: per-transaction trace events plus a
    /// `"hier"` gauge timeline (combined local-ring occupancy, global-ring
    /// occupancy, total IRI queue depth). Strictly observational.
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let mut obs = Obs::enabled(cfg, self.nodes.len());
        self.obs_hier_tl = obs.add_timeline("hier", &["local_occ", "global_occ", "iri_queue"]);
        self.obs = obs;
    }

    /// Takes the telemetry recorder after a run; `None` unless
    /// [`HierNetSim::attach_obs`] was called.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        std::mem::take(&mut self.obs).into_recorder()
    }

    /// Encodes routing into a message: requester in `requester`, the home
    /// ring in the upper block bits, and a per-transaction id in the lower
    /// bits (parity varies so both probe slots are exercised).
    fn make_probe(req: NodeId, home_ring: usize, txn: u64) -> RingMessage {
        let block = BlockAddr::new(((home_ring as u64) << 32) | txn);
        RingMessage::for_requester(MsgKind::SnoopRead, block, req, req, req)
    }

    fn home_ring_of(msg: &RingMessage) -> usize {
        // Mask off the origin-ring tag that IRIs add in bits 48+.
        ((msg.block.raw() >> 32) & 0xFFFF) as usize
    }

    /// Debug variant of [`HierNetSim::run`] that aborts after `max_cycles`
    /// and dumps per-node and per-IRI state.
    #[doc(hidden)]
    pub fn run_debug(&mut self, max_cycles: u64) -> HierNetReport {
        self.max_cycles = max_cycles;
        self.debug = true;
        self.run()
    }

    /// Runs to completion.
    pub fn run(&mut self) -> HierNetReport {
        let period = self.cfg.hier.base().clock_period;
        let mem_cycles = self.cfg.mem_latency.as_ps().div_ceil(period.as_ps());
        let per_ring = self.cfg.hier.nodes_per_ring();
        // Delayed reply queue: (ready_cycle, home_global_node, msg) — the
        // home node inserts its own reply once the memory access finishes.
        let mut pending_replies: Vec<(u64, usize, RingMessage)> = Vec::new();
        let mut cycle: u64 = 0;
        // Nodes that have entered `Phase::Done` (termination check without
        // an all-nodes scan every cycle).
        let mut done_nodes: usize = 0;
        loop {
            let now = period * cycle;
            // 1. nodes think / issue. `wake_at` keeps nodes that provably
            // cannot move (still thinking, waiting on a reply, done) out of
            // the loop body; reply completion re-arms the entry.
            for i in 0..self.nodes.len() {
                if self.wake_at[i] > cycle {
                    continue;
                }
                let node = &mut self.nodes[i];
                let Phase::Thinking { until } = node.phase else {
                    self.wake_at[i] = u64::MAX;
                    continue;
                };
                if until > now {
                    self.wake_at[i] = until.as_ps().div_ceil(period.as_ps());
                    continue;
                }
                if node.issued == self.cfg.txns_per_node {
                    node.phase = Phase::Done;
                    node.finished = now;
                    done_nodes += 1;
                    self.wake_at[i] = u64::MAX;
                    continue;
                }
                node.issued += 1;
                node.started = now;
                let my_ring = i / per_ring;
                let home_ring = if node.rng.chance(self.cfg.locality) {
                    my_ring
                } else {
                    // A uniformly chosen *other* ring.
                    let k = self.cfg.hier.local_rings() as u64 - 1;
                    let pick = node.rng.next_below(k) as usize;
                    if pick >= my_ring {
                        pick + 1
                    } else {
                        pick
                    }
                };
                let probe = Self::make_probe(NodeId::new(i % per_ring), home_ring, node.issued);
                let block = probe.block.raw();
                node.out_q.push_back(probe);
                node.phase = Phase::Waiting;
                self.wake_at[i] = u64::MAX;
                self.obs.txn_begin(i, "probe", block, now);
            }
            // 2. release matured replies into the home nodes' send queues.
            pending_replies.retain(|&(ready, home_node, msg)| {
                if ready <= cycle {
                    self.nodes[home_node].out_q.push_back(msg);
                    false
                } else {
                    true
                }
            });
            // 3. local rings: arrivals at processor and IRI positions —
            // only the positions with a header this phase.
            let lphase = (cycle % self.local_sched.len().max(1) as u64) as usize;
            for ring_idx in 0..self.locals.len() {
                for k in 0..self.local_sched[lphase].len() {
                    let (pos, slot) = self.local_sched[lphase][k];
                    self.handle_local_arrival(
                        ring_idx,
                        pos,
                        slot,
                        cycle,
                        mem_cycles,
                        &mut pending_replies,
                    );
                }
            }
            // 4. global ring: arrivals at IRI positions (skip padding
            // positions when the global ring was widened to its 2-node
            // minimum).
            let gphase = (cycle % self.global_sched.len() as u64) as usize;
            for k in 0..self.global_sched[gphase].len() {
                let (pos, slot) = self.global_sched[gphase][k];
                if pos.index() < self.cfg.hier.local_rings() {
                    self.handle_global_arrival(pos, slot);
                }
            }
            // 5. advance everything one cycle.
            for ring in &mut self.locals {
                ring.advance();
            }
            self.global.advance();
            if self.obs.sample_due(now) {
                let (mut occ, mut cap) = (0.0, 0.0);
                for r in &self.locals {
                    occ += r.in_flight() as f64;
                    cap += r.layout().slot_count() as f64;
                }
                let gcap = self.global.layout().slot_count() as f64;
                let iri_q: usize =
                    self.iris.iter().map(|i| i.to_global.len() + i.to_local.len()).sum();
                let values = vec![
                    if cap > 0.0 { occ / cap } else { 0.0 },
                    if gcap > 0.0 { self.global.in_flight() as f64 / gcap } else { 0.0 },
                    iri_q as f64,
                ];
                self.obs.sample(self.obs_hier_tl, now, values);
            }
            cycle += 1;
            if done_nodes == self.nodes.len() {
                break;
            }
            if cycle >= self.max_cycles {
                if self.debug {
                    for (i, n) in self.nodes.iter().enumerate() {
                        if n.phase != Phase::Done {
                            eprintln!(
                                "node {i}: {:?} issued {} out_q {}",
                                n.phase,
                                n.issued,
                                n.out_q.len()
                            );
                        }
                    }
                    for (r, iri) in self.iris.iter().enumerate() {
                        eprintln!(
                            "iri {r}: to_global {:?} to_local {:?}",
                            iri.to_global, iri.to_local
                        );
                    }
                    for (r, ring) in self.locals.iter().enumerate() {
                        eprintln!("local ring {r}: in_flight {}", ring.in_flight());
                    }
                    eprintln!("global: in_flight {}", self.global.in_flight());
                    break;
                }
                panic!("hierarchy network simulation ran away (deadlock?)");
            }
        }
        let sim_end = period * cycle;
        let local_util = {
            let mut occupied = 0u64;
            let mut capacity = 0u64;
            for r in &self.locals {
                occupied += r.stats().occupied_slot_cycles;
                capacity += r.stats().cycles * r.layout().slot_count() as u64;
            }
            if capacity == 0 {
                0.0
            } else {
                occupied as f64 / capacity as f64
            }
        };
        HierNetReport {
            latency: self.latency,
            latency_hist: self.latency_hist.clone(),
            local_util,
            global_util: self.global.stats().slot_utilization(self.global.layout().slot_count()),
            completed: self.completed,
            sim_end,
        }
    }

    /// Folds a finished run into the interconnect-neutral [`SimReport`]
    /// shape the ring and bus simulators produce, so the hierarchy backend
    /// can ride the same [`crate::Simulator`] dispatch, CLI printing and
    /// metrics export.
    ///
    /// Field mapping (this simulator abstracts coherence to one
    /// request/reply transaction shape):
    ///
    /// * `proc_cycle` — the mean think time (the closest analogue of
    ///   "execution speed" in the closed-loop workload);
    /// * `ring_util`/`probe_util` — combined local-ring slot utilisation,
    ///   `block_util` — global-ring slot utilisation;
    /// * `miss_*` — end-to-end transaction latency;
    /// * `class_latencies.local` / `.clean_remote` — intra-ring vs
    ///   inter-ring transactions (mirrored in `events` so
    ///   `events.misses()` equals the completed-transaction count).
    #[must_use]
    pub fn sim_report(&self, rep: &HierNetReport) -> SimReport {
        let measures = self.nodes.iter().map(|n| NodeMeasure {
            finished_at: n.finished,
            measure_start: Time::ZERO,
            busy: n.finished.saturating_sub(n.wait_total),
            misses: n.issued,
            miss_lat: &n.lat_hist,
        });
        let (per_node, proc_util, _) = summarize_nodes(measures);
        let events = CoherenceEvents {
            read_clean_local: self.intra_hist.count(),
            read_clean_remote: self.inter_hist.count(),
            ..CoherenceEvents::default()
        };
        let class_latencies = ClassLatencies {
            local: self.intra_hist.clone(),
            clean_remote: self.inter_hist.clone(),
            ..ClassLatencies::default()
        };
        let report = SimReport {
            protocol: "hier-net".to_owned(),
            nodes: self.nodes.len(),
            proc_cycle: self.cfg.think_time,
            sim_end: rep.sim_end,
            proc_util,
            ring_util: rep.local_util,
            probe_util: rep.local_util,
            block_util: rep.global_util,
            miss_latency: rep.latency,
            miss_histogram: rep.latency_hist.clone(),
            upgrade_latency: RunningMean::default(),
            class_latencies,
            events,
            retries: 0,
            per_node,
        };
        if ringsim_obs::global_metrics_enabled() {
            ringsim_obs::global_record(&report.metrics_summary());
        }
        report
    }

    /// Handles one header arrival on local ring `ring_idx`: `pos` below
    /// `nodes_per_ring()` is a processor interface, the last position is
    /// the ring's IRI.
    #[allow(clippy::too_many_lines)]
    fn handle_local_arrival(
        &mut self,
        ring_idx: usize,
        pos: NodeId,
        slot: SlotId,
        cycle: u64,
        mem_cycles: u64,
        pending_replies: &mut Vec<(u64, usize, RingMessage)>,
    ) {
        let now = self.cfg.hier.base().clock_period * cycle;
        let per_ring = self.cfg.hier.nodes_per_ring();
        let iri_pos = NodeId::new(per_ring); // last interface on the local ring
        let ring = &mut self.locals[ring_idx];
        if pos.index() < per_ring {
            // Processor position.
            let p = pos.index();
            let global_node = ring_idx * per_ring + p;
            if let Some(&msg) = ring.peek(slot) {
                #[allow(clippy::collapsible_match)] // symmetry with the probe arm
                match msg.kind {
                    MsgKind::SnoopRead => {
                        // Home snoop: the home of an intra/remote probe is a
                        // fixed pseudo-position — we model "some node in the
                        // home ring responds": the probe's requester field
                        // names the requester *within its own ring*; the
                        // responder is the node whose index matches the
                        // transaction id.
                        if Self::home_ring_of(&msg) == ring_idx
                            && (msg.block.raw() as usize % per_ring) == p
                        {
                            // Schedule the reply after the memory access.
                            // Inter-ring replies first head to this ring's
                            // IRI; intra-ring replies go straight to the
                            // requester.
                            let origin_ring = (msg.block.raw() >> 48) as usize;
                            let dst = if origin_ring == 0 { msg.requester } else { iri_pos };
                            let reply =
                                RingMessage { kind: MsgKind::BlockData, src: pos, dst, ..msg };
                            pending_replies.push((
                                cycle + mem_cycles,
                                ring_idx * per_ring + p,
                                reply,
                            ));
                        }
                        // The probe continues; its *source* removes it.
                        if msg.src == pos && msg.kind.returns_to_source() {
                            // Full revolution completed at the requester's
                            // interface — but only in the ring it was
                            // inserted into.
                            let _ = ring.remove(slot, pos);
                        }
                    }
                    MsgKind::BlockData => {
                        if msg.dst == pos {
                            let m = ring.remove(slot, pos);
                            // Reply reached the requester: transaction done
                            // (only when this is the requester's own ring —
                            // i.e. the message was re-injected here).
                            let origin_ring = (m.block.raw() >> 48) as usize;
                            let home_ring = Self::home_ring_of(&m);
                            let is_final = if origin_ring == 0 {
                                // Intra-ring transactions never leave their
                                // ring, so arriving at dst is final.
                                home_ring == ring_idx
                            } else {
                                origin_ring - 1 == ring_idx
                            };
                            debug_assert!(is_final, "reply removed in the wrong ring: {m}");
                            if is_final {
                                let node = &mut self.nodes[global_node];
                                debug_assert_eq!(node.phase, Phase::Waiting);
                                let lat = now.saturating_sub(node.started);
                                node.wait_total += lat;
                                node.lat_hist.record_time(lat);
                                self.latency.push_time_ns(lat);
                                self.latency_hist.record_time(lat);
                                if origin_ring == 0 {
                                    self.intra_hist.record_time(lat);
                                } else {
                                    self.inter_hist.record_time(lat);
                                }
                                self.completed += 1;
                                let think =
                                    (node.rng.next_f64() * 2.0 * self.cfg.think_time.as_ns_f64())
                                        .max(0.1);
                                let until = now + Time::from_ns_f64(think);
                                node.phase = Phase::Thinking { until };
                                let period_ps = self.cfg.hier.base().clock_period.as_ps();
                                self.wake_at[global_node] = until.as_ps().div_ceil(period_ps);
                                let class = if origin_ring == 0 { "intra" } else { "inter" };
                                self.obs.txn_end(global_node, "txn", class, now);
                                if sanitize::sanitize_enabled() {
                                    let issued: u64 = self.nodes.iter().map(|n| n.issued).sum();
                                    sanitize::check_conservation(
                                        "hier-net",
                                        issued,
                                        self.completed,
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
            } else if let Some(msg) = self.nodes[global_node].out_q.front().copied() {
                let kind = ring.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                if ok && ring.try_insert(slot, pos, msg).is_ok() {
                    self.nodes[global_node].out_q.pop_front();
                }
            }
        } else {
            // IRI position: copy inter-ring probes, inject queued messages.
            if let Some(&msg) = ring.peek(slot) {
                #[allow(clippy::collapsible_match)] // symmetry with the probe arm
                match msg.kind {
                    MsgKind::SnoopRead => {
                        let home_ring = Self::home_ring_of(&msg);
                        if home_ring != ring_idx && (msg.block.raw() >> 48) == 0 {
                            // First pass of an inter-ring probe: tag its
                            // origin ring (+1 so 0 means "untagged") and
                            // forward a copy to the global ring.
                            let mut copy = msg;
                            copy.block =
                                BlockAddr::new(msg.block.raw() | ((ring_idx as u64 + 1) << 48));
                            self.iris[ring_idx].to_global.push_back(copy);
                        }
                        if msg.src == iri_pos {
                            // A probe the IRI injected into this ring has
                            // completed its revolution here.
                            let _ = ring.remove(slot, iri_pos);
                        }
                    }
                    MsgKind::BlockData => {
                        if msg.dst == iri_pos {
                            // Reply leaving this ring towards the requester.
                            let m = ring.remove(slot, iri_pos);
                            self.iris[ring_idx].to_global.push_back(m);
                        }
                    }
                    _ => {}
                }
            } else if let Some(msg) = self.iris[ring_idx].to_local.front().copied() {
                let kind = ring.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                // Re-address the message for this ring.
                let mut m = msg;
                match m.kind {
                    MsgKind::SnoopRead => {
                        // Probe injected by the IRI circles this ring once.
                        m.src = iri_pos;
                        m.dst = iri_pos;
                    }
                    MsgKind::BlockData => {
                        m.src = iri_pos;
                        // dst stays: the requester position (final ring) or
                        // was already set by the home (reply in home ring
                        // heads to the IRI when inter-ring).
                    }
                    _ => {}
                }
                if ok && ring.try_insert(slot, iri_pos, m).is_ok() {
                    self.iris[ring_idx].to_local.pop_front();
                }
            }
        }
    }

    /// Handles one header arrival on the global ring at IRI position `pos`.
    fn handle_global_arrival(&mut self, pos: NodeId, slot: SlotId) {
        let r = pos.index();
        {
            if let Some(&msg) = self.global.peek(slot) {
                #[allow(clippy::collapsible_match)] // symmetry with the probe arm
                match msg.kind {
                    MsgKind::SnoopRead => {
                        // Target ring's IRI copies the probe down.
                        if Self::home_ring_of(&msg) == r {
                            self.iris[r].to_local.push_back(msg);
                        }
                        if msg.src == pos {
                            let _ = self.global.remove(slot, pos);
                        }
                    }
                    MsgKind::BlockData => {
                        // Replies are addressed to the origin ring's IRI.
                        let origin_ring = (msg.block.raw() >> 48) as usize;
                        if origin_ring >= 1 && origin_ring - 1 == r {
                            let mut m = self.global.remove(slot, pos);
                            // Down into the requester's ring.
                            m.dst = m.requester;
                            self.iris[r].to_local.push_back(m);
                        }
                    }
                    _ => {}
                }
            } else if let Some(msg) = self.iris[r].to_global.front().copied() {
                let kind = self.global.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                let mut m = msg;
                if m.kind == MsgKind::SnoopRead {
                    m.src = pos;
                    m.dst = pos;
                }
                if ok && self.global.try_insert(slot, pos, m).is_ok() {
                    self.iris[r].to_global.pop_front();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rings: usize, per: usize, think_ns: u64, locality: f64, txns: u64) -> HierNetReport {
        let hier = RingHierarchy::new(rings, per).unwrap();
        let mut cfg = HierNetConfig::new(hier);
        cfg.think_time = Time::from_ns(think_ns);
        cfg.locality = locality;
        cfg.txns_per_node = txns;
        HierNetSim::new(cfg).unwrap().run()
    }

    #[test]
    fn completes_all_transactions() {
        let r = run(4, 4, 400, 0.25, 80);
        assert_eq!(r.completed, 16 * 80);
        assert_eq!(r.latency.count(), 16 * 80);
    }

    #[test]
    fn latency_floor_is_memory_plus_travel() {
        let r = run(4, 4, 2_000, 1.0, 60);
        // Fully local: probe revolution (local ring: 5 interfaces -> 20
        // stages -> 40 ns) + 140 ns memory + reply — never below ~180 ns.
        assert!(r.latency.min().unwrap_or(0.0) >= 180.0, "min {:?}", r.latency.min());
        // And with long think times, contention is negligible: the mean
        // stays close to the floor.
        assert!(r.latency.mean() < 320.0, "mean {}", r.latency.mean());
    }

    #[test]
    fn inter_ring_costs_more_than_intra() {
        let local = run(4, 4, 1_500, 1.0, 60);
        let remote = run(4, 4, 1_500, 0.0, 60);
        assert!(
            remote.latency.mean() > local.latency.mean() + 50.0,
            "remote {} vs local {}",
            remote.latency.mean(),
            local.latency.mean()
        );
        assert!(remote.global_util > local.global_util);
    }

    #[test]
    fn load_raises_utilisation_and_latency() {
        let light = run(4, 4, 2_000, 0.25, 60);
        let heavy = run(4, 4, 150, 0.25, 60);
        assert!(heavy.global_util > light.global_util);
        assert!(heavy.latency.mean() > light.latency.mean());
    }

    #[test]
    fn deterministic() {
        let a = run(2, 4, 500, 0.5, 40);
        let b = run(2, 4, 500, 0.5, 40);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.sim_end, b.sim_end);
    }

    #[test]
    fn sim_report_mirrors_run_totals() {
        let hier = RingHierarchy::new(4, 4).unwrap();
        let mut cfg = HierNetConfig::new(hier);
        cfg.txns_per_node = 40;
        let mut sim = HierNetSim::new(cfg).unwrap();
        let rep = sim.run();
        let sr = sim.sim_report(&rep);
        assert_eq!(sr.protocol, "hier-net");
        assert_eq!(sr.nodes, 16);
        assert_eq!(sr.sim_end, rep.sim_end);
        assert_eq!(sr.events.misses(), rep.completed);
        assert_eq!(sr.miss_histogram.count(), rep.completed);
        assert_eq!(
            sr.class_latencies.local.count() + sr.class_latencies.clean_remote.count(),
            rep.completed
        );
        assert_eq!(sr.per_node.len(), 16);
        assert!(sr.per_node.iter().all(|n| n.misses == 40));
        assert!(sr.proc_util > 0.0 && sr.proc_util <= 1.0);
        assert!((sr.miss_latency.mean() - rep.latency.mean()).abs() < 1e-9);
    }
}
