//! Message-level timed simulation of a tree of slotted rings.
//!
//! This validates the hierarchical analytical model
//! (`ringsim_analytic::HierRingModel`) by actually circulating messages
//! through real [`SlotRing`]s: every ring of a [`RingTopology`] — flat,
//! two-level or three-level — is a slot machine in lockstep, [`Bridge`]
//! junctions forward between a ring and its parent, and nodes run a closed
//! loop of *think → transact → wait for reply*. Coherence details are
//! abstracted to a single request/reply transaction shape (the protocol
//! level is validated separately by the flat-ring system simulator); what
//! is measured here is exactly what the hierarchy model predicts — slot
//! contention and multi-level latency.
//!
//! Transaction shapes (KSR1-style bridge filters):
//!
//! * **intra-ring**: a probe makes one full leaf revolution (snooped by
//!   the home on the way), the home replies after the 140 ns access with a
//!   block message to the requester.
//! * **inter-ring**: the probe makes a full revolution of every ring on
//!   the tree path — its own leaf (the uplink bridge copies it as it
//!   passes), each ring up to the meet point, and each ring back down to
//!   the home leaf; the reply hops home → bridges → requester through
//!   block slots.
//!
//! Bridges come in two flavours selected by
//! [`HierNetConfig::bridge_buffer`]:
//!
//! * `None` (classic): unbounded transfer queues, the original two-level
//!   interface behaviour — for two-level trees this path is bit-for-bit
//!   identical to the pre-topology `hier` backend.
//! * `Some(depth)` (HiRD-style deflection): transfer queues are capped at
//!   `depth.max(1)` entries (0 ⇒ a single-entry bufferless latch). A
//!   message that loses arbitration at a full bridge is *deflected*: it
//!   stays on its current ring, re-circulates, and retries one revolution
//!   later. Each deflection bumps a deterministic age tag in the message
//!   header; aged messages may claim the last queue entry that fresh
//!   messages (at depth ≥ 2) must leave free, and a message deflected
//!   [`ESCAPE_AGE`] times is admitted even into a full queue (which then
//!   transiently exceeds its cap) — without that escape, fully occupied
//!   bridges on opposite sides of a ring can enter a circular wait. Every
//!   message is therefore eventually delivered. Per-bridge
//!   occupancy/deflection gauges flow through the `ringsim-obs` sinks.

use ringsim_obs::{LatencyHistogram, Obs, ObsConfig, Recorder};
use ringsim_proto::{MsgClass, MsgKind, RingMessage};
use ringsim_ring::{RingHierarchy, RingTopology, SlotId, SlotKind, SlotRing};
use ringsim_types::rng::Xoshiro256;
use ringsim_types::stats::RunningMean;
use ringsim_types::{BlockAddr, CoherenceEvents, ConfigError, NodeId, Time};

use crate::collections::RingBuf;
use crate::report::{summarize_nodes, ClassLatencies, NodeMeasure, SimReport};
use crate::sanitize;

/// Block-address bit layout. Bits 0–31 carry the per-transaction id,
/// bits 32–47 the home leaf ring and bits 48–53 the origin leaf ring + 1
/// (0 = untagged) — all of which route the message. Bits 54+ only exist
/// in deflection mode: bit 54 marks "crossed its bridge on this ring" and
/// bits 55–62 count deflections (the age tag). The classic path never
/// sets them, which is what keeps it bit-identical to the pre-topology
/// backend.
const HOME_SHIFT: u32 = 32;
const ORIGIN_SHIFT: u32 = 48;
const ORIGIN_MASK: u64 = 0x3F;
const CROSSED_BIT: u64 = 1 << 54;
const AGE_SHIFT: u32 = 55;
const AGE_MASK: u64 = 0xFF;
/// Everything that routes: txn id, home ring, origin tag.
const ROUTE_MASK: u64 = CROSSED_BIT - 1;

/// Configuration of a hierarchy network simulation.
#[derive(Debug, Clone)]
pub struct HierNetConfig {
    /// The ring tree (flat, two-level or three-level).
    pub topo: RingTopology,
    /// Mean think time between a node's transactions.
    pub think_time: Time,
    /// Probability that a transaction's home is in the requester's ring
    /// (uniform placement would be `1 / leaf_rings`).
    pub locality: f64,
    /// Memory access time at the home (paper: 140 ns).
    pub mem_latency: Time,
    /// Transactions each node completes (after which it stops).
    pub txns_per_node: u64,
    /// PRNG seed for think times, home choices and block parities.
    pub seed: u64,
    /// Bridge transfer-queue depth: `None` for the classic unbounded
    /// queues, `Some(depth)` for HiRD-style deflection routing with
    /// `depth.max(1)`-entry queues (0 ⇒ bufferless latch).
    pub bridge_buffer: Option<usize>,
}

impl HierNetConfig {
    /// A baseline configuration for a classic two-level topology.
    #[must_use]
    pub fn new(hier: RingHierarchy) -> Self {
        Self::with_topology(hier.into_topology())
    }

    /// A baseline configuration for the given ring tree.
    #[must_use]
    pub fn with_topology(topo: RingTopology) -> Self {
        let locality = topo.uniform_locality();
        Self {
            topo,
            think_time: Time::from_ns(400),
            locality,
            mem_latency: Time::from_ns(140),
            txns_per_node: 400,
            seed: 0xB10C,
            bridge_buffer: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for out-of-range values.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.think_time.is_zero() {
            return Err(ConfigError::new("think_time", "must be non-zero"));
        }
        if !(0.0..=1.0).contains(&self.locality) {
            return Err(ConfigError::new("locality", "must be in [0, 1]"));
        }
        if self.txns_per_node == 0 {
            return Err(ConfigError::new("txns_per_node", "must be non-zero"));
        }
        if let Some(depth) = self.bridge_buffer {
            if depth > 1024 {
                return Err(ConfigError::new("bridge_buffer", "at most 1024 entries"));
            }
        }
        Ok(())
    }
}

/// Results of a hierarchy network simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct HierNetReport {
    /// Mean end-to-end transaction latency (ns), issue to reply.
    pub latency: RunningMean,
    /// Full latency distribution (log2 buckets) over the same samples.
    pub latency_hist: LatencyHistogram,
    /// Combined slot utilisation of the leaf rings.
    pub local_util: f64,
    /// Combined slot utilisation of every ring above the leaves (0 for a
    /// flat topology).
    pub global_util: f64,
    /// Completed transactions.
    pub completed: u64,
    /// Simulated time.
    pub sim_end: Time,
    /// Total bridge deflections (always 0 with unbounded bridges).
    pub deflections: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Thinking {
        until: Time,
    },
    /// Waiting to insert the initial probe / waiting for the reply.
    Waiting,
    Done,
}

#[derive(Debug)]
struct NetNode {
    phase: Phase,
    issued: u64,
    started: Time,
    /// Cumulative issue-to-reply wait over all its transactions.
    wait_total: Time,
    /// When the node retired (entered [`Phase::Done`]).
    finished: Time,
    /// Its own end-to-end latency distribution.
    lat_hist: LatencyHistogram,
    /// Pending leaf-ring insertions for this node.
    out_q: RingBuf<RingMessage>,
    rng: Xoshiro256,
}

/// A junction between a ring and its parent: the generalisation of the
/// two-level inter-ring interface (IRI). `bridges[level][ring]` connects
/// ring `ring` of `level` to the parent ring above it; routing is encoded
/// in the message header (`block`'s bits carry the home/origin leaf rings)
/// so bridges need no per-transaction state.
#[derive(Debug)]
struct Bridge {
    /// Messages waiting to enter the parent ring.
    up: RingBuf<RingMessage>,
    /// Messages waiting to enter this bridge's own (child) ring.
    down: RingBuf<RingMessage>,
    /// `None`: unbounded classic queues. `Some(cap)`: deflection mode,
    /// at most `cap` entries per direction.
    cap: Option<usize>,
    /// Messages this bridge turned away (deflection mode only).
    deflections: u64,
    /// Messages this bridge accepted (both directions).
    transfers: u64,
}

/// After this many lost arbitrations a message is admitted regardless of
/// queue occupancy (the queue transiently exceeds its cap). Finite bridge
/// queues alone can deadlock: with every queue full, a circulating message
/// that must cross before it can be removed holds the very ring slot the
/// opposing queue needs to drain into — a circular wait the age priority
/// cannot break when the cap leaves no reserved entry. The escape bound
/// turns that wait into bounded extra occupancy (at most one in-flight
/// message per node exists system-wide), restoring guaranteed delivery.
const ESCAPE_AGE: u64 = 8;

impl Bridge {
    fn new(cap: Option<usize>) -> Self {
        Self { up: RingBuf::new(), down: RingBuf::new(), cap, deflections: 0, transfers: 0 }
    }

    /// Arbitration for one queue entry. Unbounded bridges always admit.
    /// Bounded bridges admit while there is room, but (at depth ≥ 2) hold
    /// the last entry back for aged messages; a message deflected
    /// [`ESCAPE_AGE`] times is admitted unconditionally — the deterministic
    /// priority that guarantees a deflected message eventually wins.
    fn admits(&self, queue_len: usize, age: u64) -> bool {
        match self.cap {
            None => true,
            Some(_) if age >= ESCAPE_AGE => true,
            Some(cap) => queue_len < cap && (queue_len + 1 < cap || age > 0 || cap == 1),
        }
    }

    fn occupancy(&self) -> usize {
        self.up.len() + self.down.len()
    }
}

/// The message-level hierarchy simulator.
///
/// # Examples
///
/// ```
/// use ringsim_core::{HierNetConfig, HierNetSim};
/// use ringsim_ring::RingHierarchy;
///
/// let hier = RingHierarchy::new(4, 4).unwrap();
/// let mut cfg = HierNetConfig::new(hier);
/// cfg.txns_per_node = 50;
/// let report = HierNetSim::new(cfg).unwrap().run();
/// assert_eq!(report.completed, 16 * 50);
/// assert!(report.latency.mean() > 140.0);
/// ```
#[derive(Debug)]
pub struct HierNetSim {
    cfg: HierNetConfig,
    /// `rings[level][ring]`; level 0 holds the leaf rings.
    rings: Vec<Vec<SlotRing<RingMessage>>>,
    /// `bridges[level][ring]` joins that ring to its parent; empty at the
    /// root level (and entirely for a flat topology).
    bridges: Vec<Vec<Bridge>>,
    nodes: Vec<NetNode>,
    latency: RunningMean,
    latency_hist: LatencyHistogram,
    intra_hist: LatencyHistogram,
    inter_hist: LatencyHistogram,
    completed: u64,
    /// Total deflections across all bridges.
    deflections: u64,
    max_cycles: u64,
    debug: bool,
    obs: Obs,
    obs_hier_tl: usize,
    obs_bridge_tl: usize,
    /// Earliest cycle each node could act in the think/issue step
    /// (`u64::MAX` while waiting on a reply or finished). Lets the
    /// per-cycle loop skip nodes that provably cannot move.
    wake_at: Vec<u64>,
    /// Phase-indexed header arrivals, one schedule per level (all rings of
    /// a level are identically configured): `scheds[level][cycle % stages]`
    /// lists the `(position, slot)` pairs with an arrival that cycle.
    scheds: Vec<Vec<Vec<(NodeId, SlotId)>>>,
}

impl HierNetSim {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: HierNetConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let levels = cfg.topo.levels();
        let cap = cfg.bridge_buffer.map(|d| d.max(1));
        let mut rings = Vec::with_capacity(levels);
        let mut bridges = Vec::with_capacity(levels.saturating_sub(1));
        for level in 0..levels {
            let ring_cfg = cfg.topo.level_config(level);
            rings.push(
                (0..cfg.topo.rings_at(level))
                    .map(|_| SlotRing::new(ring_cfg))
                    .collect::<Result<Vec<_>, _>>()?,
            );
            if level + 1 < levels {
                bridges.push((0..cfg.topo.rings_at(level)).map(|_| Bridge::new(cap)).collect());
            }
        }
        let scheds = rings
            .iter()
            .map(|l| l[0].layout().arrival_schedule())
            .collect::<Vec<Vec<Vec<(NodeId, SlotId)>>>>();
        let mut root = Xoshiro256::seed_from_u64(cfg.seed);
        let nodes = (0..cfg.topo.total_nodes())
            .map(|i| NetNode {
                phase: Phase::Thinking { until: Time::from_ps(1 + i as u64 * 137) },
                issued: 0,
                started: Time::ZERO,
                wait_total: Time::ZERO,
                finished: Time::ZERO,
                lat_hist: LatencyHistogram::new(),
                out_q: RingBuf::new(),
                rng: root.fork(i as u64),
            })
            .collect();
        let cfg_total_nodes = cfg.topo.total_nodes();
        Ok(Self {
            cfg,
            rings,
            bridges,
            nodes,
            latency: RunningMean::default(),
            latency_hist: LatencyHistogram::new(),
            intra_hist: LatencyHistogram::new(),
            inter_hist: LatencyHistogram::new(),
            completed: 0,
            deflections: 0,
            max_cycles: 500_000_000,
            debug: false,
            obs: Obs::disabled(),
            obs_hier_tl: usize::MAX,
            obs_bridge_tl: usize::MAX,
            wake_at: vec![0; cfg_total_nodes],
            scheds,
        })
    }

    /// Enables telemetry for this run: per-transaction trace events, a
    /// `"hier"` gauge timeline (combined leaf-ring occupancy, combined
    /// upper-ring occupancy, total bridge queue depth) and — for trees
    /// with at least one bridge — a `"bridges"` timeline with per-bridge
    /// occupancy, cumulative deflection and cumulative transfer columns.
    /// Strictly observational.
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let mut obs = Obs::enabled(cfg, self.nodes.len());
        self.obs_hier_tl = obs.add_timeline("hier", &["local_occ", "global_occ", "iri_queue"]);
        if self.cfg.topo.levels() > 1 {
            let mut names = Vec::new();
            for (level, row) in self.bridges.iter().enumerate() {
                for ring in 0..row.len() {
                    for gauge in ["occ", "defl", "xfer"] {
                        names.push(format!("L{level}R{ring}_{gauge}"));
                    }
                }
            }
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            self.obs_bridge_tl = obs.add_timeline("bridges", &refs);
        }
        self.obs = obs;
    }

    /// Takes the telemetry recorder after a run; `None` unless
    /// [`HierNetSim::attach_obs`] was called.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        std::mem::take(&mut self.obs).into_recorder()
    }

    /// Encodes routing into a message: requester in `requester`, the home
    /// leaf ring in the upper block bits, and a per-transaction id in the
    /// lower bits (parity varies so both probe slots are exercised).
    fn make_probe(req: NodeId, home_ring: usize, txn: u64) -> RingMessage {
        let block = BlockAddr::new(((home_ring as u64) << HOME_SHIFT) | txn);
        RingMessage::for_requester(MsgKind::SnoopRead, block, req, req, req)
    }

    fn home_ring_of(msg: &RingMessage) -> usize {
        // Mask off the origin-ring tag and deflection bits above bit 47.
        ((msg.block.raw() >> HOME_SHIFT) & 0xFFFF) as usize
    }

    /// Origin leaf ring + 1; 0 while untagged (intra-ring transactions).
    fn origin_of(msg: &RingMessage) -> usize {
        ((msg.block.raw() >> ORIGIN_SHIFT) & ORIGIN_MASK) as usize
    }

    /// Whether the message already crossed its bridge on this ring
    /// (deflection mode only; always false on the classic path).
    fn crossed(msg: &RingMessage) -> bool {
        msg.block.raw() & CROSSED_BIT != 0
    }

    fn age_of(msg: &RingMessage) -> u64 {
        (msg.block.raw() >> AGE_SHIFT) & AGE_MASK
    }

    /// Strips the deflection-mode bits so a message enters a bridge queue
    /// (and thus its next ring) fresh. Identity on the classic path.
    fn strip_deflect(mut msg: RingMessage) -> RingMessage {
        msg.block = BlockAddr::new(msg.block.raw() & ROUTE_MASK);
        msg
    }

    /// Marks the slot's in-flight message as having crossed its bridge
    /// (deflection mode only — the classic path never mutates a message
    /// in place).
    fn mark_crossed(ring: &mut SlotRing<RingMessage>, slot: SlotId) {
        if let Some(m) = ring.peek_mut(slot) {
            m.block = BlockAddr::new(m.block.raw() | CROSSED_BIT);
        }
    }

    /// Bumps the slot's in-flight message age tag after a lost
    /// arbitration (deflection mode only; saturating).
    fn bump_age(ring: &mut SlotRing<RingMessage>, slot: SlotId) {
        if let Some(m) = ring.peek_mut(slot) {
            let raw = m.block.raw();
            if (raw >> AGE_SHIFT) & AGE_MASK < AGE_MASK {
                m.block = BlockAddr::new(raw + (1 << AGE_SHIFT));
            }
        }
    }

    /// Debug variant of [`HierNetSim::run`] that aborts after `max_cycles`
    /// and dumps per-node and per-bridge state.
    #[doc(hidden)]
    pub fn run_debug(&mut self, max_cycles: u64) -> HierNetReport {
        self.max_cycles = max_cycles;
        self.debug = true;
        self.run()
    }

    /// Runs to completion.
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self) -> HierNetReport {
        let period = self.cfg.topo.base().clock_period;
        let mem_cycles = self.cfg.mem_latency.as_ps().div_ceil(period.as_ps());
        let per_ring = self.cfg.topo.leaf_procs();
        let leaf_rings = self.cfg.topo.leaf_rings();
        let levels = self.cfg.topo.levels();
        let root_dim = self.cfg.topo.shape()[levels - 1];
        // Delayed reply queue: (ready_cycle, home_global_node, msg) — the
        // home node inserts its own reply once the memory access finishes.
        let mut pending_replies: Vec<(u64, usize, RingMessage)> = Vec::new();
        let mut cycle: u64 = 0;
        // Nodes that have entered `Phase::Done` (termination check without
        // an all-nodes scan every cycle).
        let mut done_nodes: usize = 0;
        loop {
            let now = period * cycle;
            // 1. nodes think / issue. `wake_at` keeps nodes that provably
            // cannot move (still thinking, waiting on a reply, done) out of
            // the loop body; reply completion re-arms the entry.
            for i in 0..self.nodes.len() {
                if self.wake_at[i] > cycle {
                    continue;
                }
                let node = &mut self.nodes[i];
                let Phase::Thinking { until } = node.phase else {
                    self.wake_at[i] = u64::MAX;
                    continue;
                };
                if until > now {
                    self.wake_at[i] = until.as_ps().div_ceil(period.as_ps());
                    continue;
                }
                if node.issued == self.cfg.txns_per_node {
                    node.phase = Phase::Done;
                    node.finished = now;
                    done_nodes += 1;
                    self.wake_at[i] = u64::MAX;
                    continue;
                }
                node.issued += 1;
                node.started = now;
                let my_ring = i / per_ring;
                let home_ring = if leaf_rings == 1 {
                    // Flat topology: everything is local.
                    my_ring
                } else if node.rng.chance(self.cfg.locality) {
                    my_ring
                } else {
                    // A uniformly chosen *other* ring.
                    let k = leaf_rings as u64 - 1;
                    let pick = node.rng.next_below(k) as usize;
                    if pick >= my_ring {
                        pick + 1
                    } else {
                        pick
                    }
                };
                let probe = Self::make_probe(NodeId::new(i % per_ring), home_ring, node.issued);
                let block = probe.block.raw();
                node.out_q.push_back(probe);
                node.phase = Phase::Waiting;
                self.wake_at[i] = u64::MAX;
                self.obs.txn_begin(i, "probe", block, now);
            }
            // 2. release matured replies into the home nodes' send queues.
            pending_replies.retain(|&(ready, home_node, msg)| {
                if ready <= cycle {
                    self.nodes[home_node].out_q.push_back(msg);
                    false
                } else {
                    true
                }
            });
            // 3. leaf rings: arrivals at processor and bridge positions —
            // only the positions with a header this phase.
            let lphase = (cycle % self.scheds[0].len().max(1) as u64) as usize;
            for ring_idx in 0..self.rings[0].len() {
                for k in 0..self.scheds[0][lphase].len() {
                    let (pos, slot) = self.scheds[0][lphase][k];
                    self.handle_leaf_arrival(
                        ring_idx,
                        pos,
                        slot,
                        cycle,
                        mem_cycles,
                        &mut pending_replies,
                    );
                }
            }
            // 4. upper rings, level by level: arrivals at child-bridge and
            // uplink positions (skip padding positions when the root ring
            // was widened to its 2-node minimum).
            for level in 1..levels {
                let phase = (cycle % self.scheds[level].len() as u64) as usize;
                for ring_idx in 0..self.rings[level].len() {
                    for k in 0..self.scheds[level][phase].len() {
                        let (pos, slot) = self.scheds[level][phase][k];
                        if level + 1 == levels && pos.index() >= root_dim {
                            continue;
                        }
                        self.handle_upper_arrival(level, ring_idx, pos, slot);
                    }
                }
            }
            // 5. advance everything one cycle, leaves first.
            for level in &mut self.rings {
                for ring in level {
                    ring.advance();
                }
            }
            if self.obs.sample_due(now) {
                let (mut occ, mut cap) = (0.0, 0.0);
                for r in &self.rings[0] {
                    occ += r.in_flight() as f64;
                    cap += r.layout().slot_count() as f64;
                }
                let (mut gocc, mut gcap) = (0.0, 0.0);
                for level in &self.rings[1..] {
                    for r in level {
                        gocc += r.in_flight() as f64;
                        gcap += r.layout().slot_count() as f64;
                    }
                }
                let iri_q: usize = self.bridges.iter().flatten().map(Bridge::occupancy).sum();
                let values = vec![
                    if cap > 0.0 { occ / cap } else { 0.0 },
                    if gcap > 0.0 { gocc / gcap } else { 0.0 },
                    iri_q as f64,
                ];
                self.obs.sample(self.obs_hier_tl, now, values);
                if self.obs_bridge_tl != usize::MAX {
                    let mut gauges = Vec::new();
                    for row in &self.bridges {
                        for b in row {
                            gauges.push(b.occupancy() as f64);
                            gauges.push(b.deflections as f64);
                            gauges.push(b.transfers as f64);
                        }
                    }
                    self.obs.sample(self.obs_bridge_tl, now, gauges);
                }
            }
            cycle += 1;
            if done_nodes == self.nodes.len() {
                break;
            }
            if cycle >= self.max_cycles {
                if self.debug {
                    for (i, n) in self.nodes.iter().enumerate() {
                        if n.phase != Phase::Done {
                            eprintln!(
                                "node {i}: {:?} issued {} out_q {}",
                                n.phase,
                                n.issued,
                                n.out_q.len()
                            );
                        }
                    }
                    for (level, row) in self.bridges.iter().enumerate() {
                        for (r, b) in row.iter().enumerate() {
                            eprintln!(
                                "bridge L{level}R{r}: up {:?} down {:?} deflections {}",
                                b.up, b.down, b.deflections
                            );
                        }
                    }
                    for (level, row) in self.rings.iter().enumerate() {
                        for (r, ring) in row.iter().enumerate() {
                            eprintln!("ring L{level}R{r}: in_flight {}", ring.in_flight());
                        }
                    }
                    break;
                }
                panic!("hierarchy network simulation ran away (deadlock?)");
            }
        }
        let sim_end = period * cycle;
        let local_util = {
            let mut occupied = 0u64;
            let mut capacity = 0u64;
            for r in &self.rings[0] {
                occupied += r.stats().occupied_slot_cycles;
                capacity += r.stats().cycles * r.layout().slot_count() as u64;
            }
            if capacity == 0 {
                0.0
            } else {
                occupied as f64 / capacity as f64
            }
        };
        let global_util = {
            let mut occupied = 0u64;
            let mut capacity = 0u64;
            for level in &self.rings[1..] {
                for r in level {
                    occupied += r.stats().occupied_slot_cycles;
                    capacity += r.stats().cycles * r.layout().slot_count() as u64;
                }
            }
            if capacity == 0 {
                0.0
            } else {
                occupied as f64 / capacity as f64
            }
        };
        HierNetReport {
            latency: self.latency,
            latency_hist: self.latency_hist.clone(),
            local_util,
            global_util,
            completed: self.completed,
            sim_end,
            deflections: self.deflections,
        }
    }

    /// Folds a finished run into the interconnect-neutral [`SimReport`]
    /// shape the ring and bus simulators produce, so the hierarchy backend
    /// can ride the same [`crate::Simulator`] dispatch, CLI printing and
    /// metrics export.
    ///
    /// Field mapping (this simulator abstracts coherence to one
    /// request/reply transaction shape):
    ///
    /// * `proc_cycle` — the mean think time (the closest analogue of
    ///   "execution speed" in the closed-loop workload);
    /// * `ring_util`/`probe_util` — combined leaf-ring slot utilisation,
    ///   `block_util` — combined upper-ring slot utilisation;
    /// * `miss_*` — end-to-end transaction latency;
    /// * `class_latencies.local` / `.clean_remote` — intra-ring vs
    ///   inter-ring transactions (mirrored in `events` so
    ///   `events.misses()` equals the completed-transaction count);
    /// * `retries` — total bridge deflections (0 with unbounded bridges).
    #[must_use]
    pub fn sim_report(&self, rep: &HierNetReport) -> SimReport {
        let measures = self.nodes.iter().map(|n| NodeMeasure {
            finished_at: n.finished,
            measure_start: Time::ZERO,
            busy: n.finished.saturating_sub(n.wait_total),
            misses: n.issued,
            miss_lat: &n.lat_hist,
        });
        let (per_node, proc_util, _) = summarize_nodes(measures);
        let events = CoherenceEvents {
            read_clean_local: self.intra_hist.count(),
            read_clean_remote: self.inter_hist.count(),
            ..CoherenceEvents::default()
        };
        let class_latencies = ClassLatencies {
            local: self.intra_hist.clone(),
            clean_remote: self.inter_hist.clone(),
            ..ClassLatencies::default()
        };
        let report = SimReport {
            protocol: "hier-net".to_owned(),
            nodes: self.nodes.len(),
            proc_cycle: self.cfg.think_time,
            sim_end: rep.sim_end,
            proc_util,
            ring_util: rep.local_util,
            probe_util: rep.local_util,
            block_util: rep.global_util,
            miss_latency: rep.latency,
            miss_histogram: rep.latency_hist.clone(),
            upgrade_latency: RunningMean::default(),
            class_latencies,
            events,
            retries: rep.deflections,
            per_node,
        };
        if ringsim_obs::global_metrics_enabled() {
            ringsim_obs::global_record(&report.metrics_summary());
        }
        report
    }

    /// Handles one header arrival on leaf ring `ring_idx`: `pos` below
    /// `leaf_procs()` is a processor interface, the last position (absent
    /// on a flat topology) is the ring's uplink bridge.
    #[allow(clippy::too_many_lines)]
    fn handle_leaf_arrival(
        &mut self,
        ring_idx: usize,
        pos: NodeId,
        slot: SlotId,
        cycle: u64,
        mem_cycles: u64,
        pending_replies: &mut Vec<(u64, usize, RingMessage)>,
    ) {
        let now = self.cfg.topo.base().clock_period * cycle;
        let per_ring = self.cfg.topo.leaf_procs();
        let deflect = self.cfg.bridge_buffer.is_some();
        let iri_pos = NodeId::new(per_ring); // last interface on the leaf ring
        let ring = &mut self.rings[0][ring_idx];
        if pos.index() < per_ring {
            // Processor position.
            let p = pos.index();
            let global_node = ring_idx * per_ring + p;
            if let Some(&msg) = ring.peek(slot) {
                #[allow(clippy::collapsible_match)] // symmetry with the probe arm
                match msg.kind {
                    MsgKind::SnoopRead => {
                        // Home snoop: the home of an intra/remote probe is a
                        // fixed pseudo-position — we model "some node in the
                        // home ring responds": the probe's requester field
                        // names the requester *within its own ring*; the
                        // responder is the node whose index matches the
                        // transaction id.
                        if Self::home_ring_of(&msg) == ring_idx
                            && ((msg.block.raw() & ROUTE_MASK) as usize % per_ring) == p
                        {
                            // Schedule the reply after the memory access.
                            // Inter-ring replies first head to this ring's
                            // bridge; intra-ring replies go straight to the
                            // requester.
                            let origin_ring = Self::origin_of(&msg);
                            let dst = if origin_ring == 0 { msg.requester } else { iri_pos };
                            let reply = Self::strip_deflect(RingMessage {
                                kind: MsgKind::BlockData,
                                src: pos,
                                dst,
                                ..msg
                            });
                            pending_replies.push((
                                cycle + mem_cycles,
                                ring_idx * per_ring + p,
                                reply,
                            ));
                        }
                        // The probe continues; its *source* removes it.
                        if msg.src == pos && msg.kind.returns_to_source() {
                            // Full revolution completed at the requester's
                            // interface — but only in the ring it was
                            // inserted into, and (deflection mode) only
                            // once its bridge copy actually went through.
                            let needs_cross = deflect && Self::home_ring_of(&msg) != ring_idx;
                            if !needs_cross || Self::crossed(&msg) {
                                let _ = ring.remove(slot, pos);
                            }
                        }
                    }
                    MsgKind::BlockData => {
                        if msg.dst == pos {
                            let m = ring.remove(slot, pos);
                            // Reply reached the requester: transaction done
                            // (only when this is the requester's own ring —
                            // i.e. the message was re-injected here).
                            let origin_ring = Self::origin_of(&m);
                            let home_ring = Self::home_ring_of(&m);
                            let is_final = if origin_ring == 0 {
                                // Intra-ring transactions never leave their
                                // ring, so arriving at dst is final.
                                home_ring == ring_idx
                            } else {
                                origin_ring - 1 == ring_idx
                            };
                            debug_assert!(is_final, "reply removed in the wrong ring: {m}");
                            if is_final {
                                let node = &mut self.nodes[global_node];
                                debug_assert_eq!(node.phase, Phase::Waiting);
                                let lat = now.saturating_sub(node.started);
                                node.wait_total += lat;
                                node.lat_hist.record_time(lat);
                                self.latency.push_time_ns(lat);
                                self.latency_hist.record_time(lat);
                                if origin_ring == 0 {
                                    self.intra_hist.record_time(lat);
                                } else {
                                    self.inter_hist.record_time(lat);
                                }
                                self.completed += 1;
                                let think =
                                    (node.rng.next_f64() * 2.0 * self.cfg.think_time.as_ns_f64())
                                        .max(0.1);
                                let until = now + Time::from_ns_f64(think);
                                node.phase = Phase::Thinking { until };
                                let period_ps = self.cfg.topo.base().clock_period.as_ps();
                                self.wake_at[global_node] = until.as_ps().div_ceil(period_ps);
                                let class = if origin_ring == 0 { "intra" } else { "inter" };
                                self.obs.txn_end(global_node, "txn", class, now);
                                if sanitize::sanitize_enabled() {
                                    let issued: u64 = self.nodes.iter().map(|n| n.issued).sum();
                                    sanitize::check_conservation(
                                        "hier-net",
                                        issued,
                                        self.completed,
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                }
            } else if let Some(msg) = self.nodes[global_node].out_q.front().copied() {
                let kind = ring.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                if ok && ring.try_insert(slot, pos, msg).is_ok() {
                    self.nodes[global_node].out_q.pop_front();
                }
            }
        } else {
            // Uplink bridge position: copy inter-ring probes towards the
            // parent, inject queued messages.
            if let Some(&msg) = ring.peek(slot) {
                #[allow(clippy::collapsible_match)] // symmetry with the probe arm
                match msg.kind {
                    MsgKind::SnoopRead => {
                        let home_ring = Self::home_ring_of(&msg);
                        if home_ring != ring_idx
                            && Self::origin_of(&msg) == 0
                            && !Self::crossed(&msg)
                        {
                            // First pass of an inter-ring probe: tag its
                            // origin ring (+1 so 0 means "untagged") and
                            // forward a copy towards the parent ring.
                            let bridge = &self.bridges[0][ring_idx];
                            if bridge.admits(bridge.up.len(), Self::age_of(&msg)) {
                                let mut copy = msg;
                                copy.block = BlockAddr::new(
                                    (msg.block.raw() & ROUTE_MASK)
                                        | ((ring_idx as u64 + 1) << ORIGIN_SHIFT),
                                );
                                let bridge = &mut self.bridges[0][ring_idx];
                                bridge.up.push_back(copy);
                                bridge.transfers += 1;
                                if deflect {
                                    Self::mark_crossed(ring, slot);
                                }
                            } else {
                                // Deflected: the original keeps circulating
                                // and retries next revolution, aged.
                                self.bridges[0][ring_idx].deflections += 1;
                                self.deflections += 1;
                                Self::bump_age(ring, slot);
                            }
                        }
                        if msg.src == iri_pos {
                            // A probe the bridge injected into this ring has
                            // completed its revolution here.
                            let _ = ring.remove(slot, iri_pos);
                        }
                    }
                    MsgKind::BlockData => {
                        if msg.dst == iri_pos {
                            // Reply leaving this ring towards the requester.
                            let bridge = &self.bridges[0][ring_idx];
                            if bridge.admits(bridge.up.len(), Self::age_of(&msg)) {
                                let m = Self::strip_deflect(ring.remove(slot, iri_pos));
                                let bridge = &mut self.bridges[0][ring_idx];
                                bridge.up.push_back(m);
                                bridge.transfers += 1;
                            } else {
                                self.bridges[0][ring_idx].deflections += 1;
                                self.deflections += 1;
                                Self::bump_age(ring, slot);
                            }
                        }
                    }
                    _ => {}
                }
            } else if let Some(msg) = self.bridges[0][ring_idx].down.front().copied() {
                let kind = ring.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                // Re-address the message for this ring.
                let mut m = msg;
                match m.kind {
                    MsgKind::SnoopRead => {
                        // Probe injected by the bridge circles this ring
                        // once.
                        m.src = iri_pos;
                        m.dst = iri_pos;
                    }
                    MsgKind::BlockData => {
                        m.src = iri_pos;
                        // dst stays: the requester position (final ring) or
                        // was already set by the home (reply in home ring
                        // heads to the bridge when inter-ring).
                    }
                    _ => {}
                }
                if ok && ring.try_insert(slot, iri_pos, m).is_ok() {
                    self.bridges[0][ring_idx].down.pop_front();
                }
            }
        }
    }

    /// Handles one header arrival on ring `ring_idx` of `level` ≥ 1:
    /// positions below `children_at(level)` are child-bridge interfaces,
    /// the next position (absent at the root) is the ring's own uplink.
    #[allow(clippy::too_many_lines)]
    fn handle_upper_arrival(&mut self, level: usize, ring_idx: usize, pos: NodeId, slot: SlotId) {
        let topo = &self.cfg.topo;
        let children = topo.children_at(level);
        // Leaf rings covered by one child subtree / by this whole ring.
        let per_child = topo.leafs_per_subtree(level - 1);
        let per_self = topo.leafs_per_subtree(level);
        let self_lo = ring_idx * per_self;
        let deflect = self.cfg.bridge_buffer.is_some();
        let uplink_pos = NodeId::new(children);
        let ring = &mut self.rings[level][ring_idx];
        let at_uplink = pos.index() == children;
        debug_assert!(at_uplink || pos.index() < children);
        if let Some(&msg) = ring.peek(slot) {
            #[allow(clippy::collapsible_match)] // symmetry with the probe arm
            match msg.kind {
                MsgKind::SnoopRead => {
                    let home_leaf = Self::home_ring_of(&msg);
                    if at_uplink {
                        // Probe still hunting outside this subtree: copy it
                        // up (it is already origin-tagged).
                        if !(self_lo..self_lo + per_self).contains(&home_leaf)
                            && !Self::crossed(&msg)
                        {
                            let bridge = &self.bridges[level][ring_idx];
                            if bridge.admits(bridge.up.len(), Self::age_of(&msg)) {
                                let copy = Self::strip_deflect(msg);
                                let bridge = &mut self.bridges[level][ring_idx];
                                bridge.up.push_back(copy);
                                bridge.transfers += 1;
                                if deflect {
                                    Self::mark_crossed(ring, slot);
                                }
                            } else {
                                self.bridges[level][ring_idx].deflections += 1;
                                self.deflections += 1;
                                Self::bump_age(ring, slot);
                            }
                        }
                    } else {
                        // Child-bridge interface: copy the probe down when
                        // the home leaf lives in that child's subtree.
                        let child_ring = ring_idx * children + pos.index();
                        let child_lo = child_ring * per_child;
                        if (child_lo..child_lo + per_child).contains(&home_leaf)
                            && !Self::crossed(&msg)
                        {
                            let bridge = &self.bridges[level - 1][child_ring];
                            if bridge.admits(bridge.down.len(), Self::age_of(&msg)) {
                                let copy = Self::strip_deflect(msg);
                                let bridge = &mut self.bridges[level - 1][child_ring];
                                bridge.down.push_back(copy);
                                bridge.transfers += 1;
                                if deflect {
                                    Self::mark_crossed(ring, slot);
                                }
                            } else {
                                self.bridges[level - 1][child_ring].deflections += 1;
                                self.deflections += 1;
                                Self::bump_age(ring, slot);
                            }
                        }
                    }
                    if msg.src == pos {
                        // Revolution complete at the inserting interface —
                        // in deflection mode only once the copy went
                        // through (every upper-level probe must cross
                        // exactly once, up or down).
                        if !deflect || Self::crossed(&msg) {
                            let _ = ring.remove(slot, pos);
                        }
                    }
                }
                MsgKind::BlockData => {
                    // Replies descend at the child subtree holding their
                    // origin leaf and ascend everywhere else.
                    let origin = Self::origin_of(&msg);
                    if origin >= 1 {
                        let origin_leaf = origin - 1;
                        if at_uplink {
                            if !(self_lo..self_lo + per_self).contains(&origin_leaf) {
                                let bridge = &self.bridges[level][ring_idx];
                                if bridge.admits(bridge.up.len(), Self::age_of(&msg)) {
                                    let m = Self::strip_deflect(ring.remove(slot, pos));
                                    let bridge = &mut self.bridges[level][ring_idx];
                                    bridge.up.push_back(m);
                                    bridge.transfers += 1;
                                } else {
                                    self.bridges[level][ring_idx].deflections += 1;
                                    self.deflections += 1;
                                    Self::bump_age(ring, slot);
                                }
                            }
                        } else {
                            let child_ring = ring_idx * children + pos.index();
                            let child_lo = child_ring * per_child;
                            if (child_lo..child_lo + per_child).contains(&origin_leaf) {
                                let bridge = &self.bridges[level - 1][child_ring];
                                if bridge.admits(bridge.down.len(), Self::age_of(&msg)) {
                                    let mut m = Self::strip_deflect(ring.remove(slot, pos));
                                    if level == 1 {
                                        // Down into the requester's leaf
                                        // ring.
                                        m.dst = m.requester;
                                    }
                                    let bridge = &mut self.bridges[level - 1][child_ring];
                                    bridge.down.push_back(m);
                                    bridge.transfers += 1;
                                } else {
                                    self.bridges[level - 1][child_ring].deflections += 1;
                                    self.deflections += 1;
                                    Self::bump_age(ring, slot);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        } else {
            // Empty slot: each position injects from exactly one queue —
            // child bridges drain their child's up-queue, the uplink
            // drains this ring's own down-queue.
            let queued = if at_uplink {
                self.bridges[level][ring_idx].down.front().copied()
            } else {
                let child_ring = ring_idx * children + pos.index();
                self.bridges[level - 1][child_ring].up.front().copied()
            };
            if let Some(msg) = queued {
                let kind = ring.kind_of(slot);
                let ok = match (msg.class(), kind) {
                    (MsgClass::Probe, SlotKind::Block) => false,
                    (MsgClass::Probe, k) => k.parity().accepts(msg.block.is_even()),
                    (MsgClass::Block, SlotKind::Block) => true,
                    (MsgClass::Block, _) => false,
                };
                let mut m = msg;
                if m.kind == MsgKind::SnoopRead {
                    // Probes circle this ring exactly once.
                    m.src = pos;
                    m.dst = pos;
                } else if at_uplink && m.kind == MsgKind::BlockData {
                    // Mirror the leaf-side down-insertion: mark the bridge
                    // as the inserter; dst is set at the origin's level-1
                    // descent.
                    m.src = uplink_pos;
                }
                if ok && ring.try_insert(slot, pos, m).is_ok() {
                    if at_uplink {
                        self.bridges[level][ring_idx].down.pop_front();
                    } else {
                        let child_ring = ring_idx * children + pos.index();
                        self.bridges[level - 1][child_ring].up.pop_front();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rings: usize, per: usize, think_ns: u64, locality: f64, txns: u64) -> HierNetReport {
        let hier = RingHierarchy::new(rings, per).unwrap();
        let mut cfg = HierNetConfig::new(hier);
        cfg.think_time = Time::from_ns(think_ns);
        cfg.locality = locality;
        cfg.txns_per_node = txns;
        HierNetSim::new(cfg).unwrap().run()
    }

    fn run_topo(
        topo: RingTopology,
        think_ns: u64,
        locality: f64,
        txns: u64,
        bridge_buffer: Option<usize>,
    ) -> HierNetReport {
        let mut cfg = HierNetConfig::with_topology(topo);
        cfg.think_time = Time::from_ns(think_ns);
        cfg.locality = locality;
        cfg.txns_per_node = txns;
        cfg.bridge_buffer = bridge_buffer;
        HierNetSim::new(cfg).unwrap().run()
    }

    #[test]
    fn completes_all_transactions() {
        let r = run(4, 4, 400, 0.25, 80);
        assert_eq!(r.completed, 16 * 80);
        assert_eq!(r.latency.count(), 16 * 80);
    }

    #[test]
    fn latency_floor_is_memory_plus_travel() {
        let r = run(4, 4, 2_000, 1.0, 60);
        // Fully local: probe revolution (local ring: 5 interfaces -> 20
        // stages -> 40 ns) + 140 ns memory + reply — never below ~180 ns.
        assert!(r.latency.min().unwrap_or(0.0) >= 180.0, "min {:?}", r.latency.min());
        // And with long think times, contention is negligible: the mean
        // stays close to the floor.
        assert!(r.latency.mean() < 320.0, "mean {}", r.latency.mean());
    }

    #[test]
    fn inter_ring_costs_more_than_intra() {
        let local = run(4, 4, 1_500, 1.0, 60);
        let remote = run(4, 4, 1_500, 0.0, 60);
        assert!(
            remote.latency.mean() > local.latency.mean() + 50.0,
            "remote {} vs local {}",
            remote.latency.mean(),
            local.latency.mean()
        );
        assert!(remote.global_util > local.global_util);
    }

    #[test]
    fn load_raises_utilisation_and_latency() {
        let light = run(4, 4, 2_000, 0.25, 60);
        let heavy = run(4, 4, 150, 0.25, 60);
        assert!(heavy.global_util > light.global_util);
        assert!(heavy.latency.mean() > light.latency.mean());
    }

    #[test]
    fn deterministic() {
        let a = run(2, 4, 500, 0.5, 40);
        let b = run(2, 4, 500, 0.5, 40);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.sim_end, b.sim_end);
    }

    #[test]
    fn flat_topology_completes_without_bridges() {
        let topo = RingTopology::flat(8).unwrap();
        let r = run_topo(topo, 500, 1.0, 50, None);
        assert_eq!(r.completed, 8 * 50);
        // One ring, nothing above it.
        assert!(r.global_util == 0.0);
        assert_eq!(r.deflections, 0);
    }

    #[test]
    fn three_level_completes_and_pays_for_depth() {
        let three = RingTopology::three_level(2, 2, 4).unwrap();
        let r3 = run_topo(three, 1_500, 0.0, 40, None);
        assert_eq!(r3.completed, 16 * 40);
        // Cross-group transactions traverse five rings; with the same leaf
        // count a two-level tree traverses three.
        let two = RingTopology::two_level(4, 4).unwrap();
        let r2 = run_topo(two, 1_500, 0.0, 40, None);
        assert_eq!(r2.completed, 16 * 40);
        assert!(
            r3.latency.mean() > r2.latency.mean(),
            "3-level {} vs 2-level {}",
            r3.latency.mean(),
            r2.latency.mean()
        );
    }

    #[test]
    fn deflection_mode_completes_and_counts() {
        // A bufferless latch under all-remote traffic at a short think
        // time: bridges contend, deflections happen, nothing is lost.
        let topo = RingTopology::two_level(4, 4).unwrap();
        let r = run_topo(topo, 150, 0.0, 60, Some(0));
        assert_eq!(r.completed, 16 * 60);
        assert!(r.deflections > 0, "expected contention at bufferless bridges");
        // A generous buffer deflects less.
        let roomy = run_topo(RingTopology::two_level(4, 4).unwrap(), 150, 0.0, 60, Some(64));
        assert_eq!(roomy.completed, 16 * 60);
        assert!(roomy.deflections <= r.deflections);
    }

    #[test]
    fn deflection_mode_is_deterministic() {
        let a = run_topo(RingTopology::three_level(2, 2, 2).unwrap(), 200, 0.0, 40, Some(1));
        let b = run_topo(RingTopology::three_level(2, 2, 2).unwrap(), 200, 0.0, 40, Some(1));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.deflections, b.deflections);
    }

    #[test]
    fn unbounded_bridges_never_deflect() {
        let r = run(4, 4, 150, 0.0, 60);
        assert_eq!(r.deflections, 0);
    }

    #[test]
    fn sim_report_mirrors_run_totals() {
        let hier = RingHierarchy::new(4, 4).unwrap();
        let mut cfg = HierNetConfig::new(hier);
        cfg.txns_per_node = 40;
        let mut sim = HierNetSim::new(cfg).unwrap();
        let rep = sim.run();
        let sr = sim.sim_report(&rep);
        assert_eq!(sr.protocol, "hier-net");
        assert_eq!(sr.nodes, 16);
        assert_eq!(sr.sim_end, rep.sim_end);
        assert_eq!(sr.events.misses(), rep.completed);
        assert_eq!(sr.miss_histogram.count(), rep.completed);
        assert_eq!(
            sr.class_latencies.local.count() + sr.class_latencies.clean_remote.count(),
            rep.completed
        );
        assert_eq!(sr.per_node.len(), 16);
        assert!(sr.per_node.iter().all(|n| n.misses == 40));
        assert!(sr.proc_util > 0.0 && sr.proc_util <= 1.0);
        assert!((sr.miss_latency.mean() - rep.latency.mean()).abs() < 1e-9);
    }
}
