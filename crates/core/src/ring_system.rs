//! The timed slotted-ring system simulator: processors, caches, the slot
//! machine, and the snooping or full-map directory coherence protocol.
//!
//! One `RingSystem` owns everything; [`RingSystem::run`] steps the ring one
//! clock at a time. Per cycle it (1) dispatches due delayed events (memory
//! accesses completing, retries), (2) lets each processor issue references
//! until it blocks or catches up with the clock, and (3) lets each node act
//! on the slot header arriving at its interface — snoop it, remove it, or
//! claim an empty slot for a queued message.
//!
//! ### Conflict handling
//!
//! * **Snooping** uses ack/retry, as slotted-ring snooping hardware did: a
//!   probe that returns to its requester without the owner's acknowledgment
//!   (owner busy, write-back in flight, conflicting transaction pending) is
//!   re-issued after a short backoff. An unacknowledged *invalidation*
//!   additionally drops the requester's stale line and converts into a write
//!   miss.
//! * **Directory** homes serialise transactions per block: the entry is
//!   locked from request arrival to commit, and conflicting requests queue
//!   at the home. A read fill overtaken by a multicast invalidation is
//!   "poisoned": the blocked load still completes (it is ordered before the
//!   write) but the line is not cached.

use std::collections::{HashMap, HashSet, VecDeque};

use ringsim_cache::{AccessClass, Cache, LineState};
use ringsim_obs::{LatencyHistogram, Obs, ObsConfig, Recorder};
use ringsim_proto::transitions::{self, DirAction, DirRequest, HomeSnoopAction, SnoopAction};
use ringsim_proto::{Directory, HomeMemory, MsgClass, MsgKind, ProtocolKind, RingMessage};
use ringsim_ring::{SlotId, SlotKind, SlotRing};
use ringsim_trace::{AddressSpace, NodeStream, Workload, BLOCK_BYTES};
use ringsim_types::stats::RunningMean;
use ringsim_types::{AccessKind, BlockAddr, CoherenceEvents, ConfigError, NodeId, Region, Time};

use crate::collections::{FnvMap, RingBuf};
use crate::config::SystemConfig;
use crate::report::{ClassLatencies, NodeMeasure, SimReport};
use crate::sanitize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    Read,
    Write,
    Upgrade,
}

#[derive(Debug, Clone)]
struct Txn {
    block: BlockAddr,
    kind: TxnKind,
    region: Region,
    start: Time,
    /// Data/permission comes from local memory (home == self, block clean).
    self_owner: bool,
    /// Fully local transaction (no ring use at all): local clean read.
    local_path: bool,
    /// Local memory read finishes at this time (self-owner writes).
    local_data_ready: Time,
    /// A write/invalidate overtook this read fill; complete without caching.
    poisoned: bool,
    /// Remote copies invalidated on behalf of this transaction (snooping).
    invalidated: u64,
    retries: u32,
}

#[derive(Debug)]
struct Node {
    stream: NodeStream,
    cache: Cache,
    ready_at: Time,
    instr_carry: f64,
    refs_issued: u64,
    warmup_refs: u64,
    total_refs: u64,
    measuring: bool,
    measure_start: Time,
    busy: Time,
    finish_at: Option<Time>,
    txn: Option<Txn>,
    probe_q: RingBuf<RingMessage>,
    block_q: RingBuf<RingMessage>,
    /// Dirty blocks evicted but not yet acknowledged by the home
    /// (directory mode): forwards are served from here.
    wb_buffer: HashSet<u64>,
    /// Forwards that arrived while this node's own fill was in flight.
    pending_fwds: Vec<RingMessage>,
    misses: u64,
    miss_lat: LatencyHistogram,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A purely local transaction completes.
    Complete { node: usize },
    /// `node` puts `msg` in its transmit queue (or delivers it locally when
    /// `dst == src`).
    Send { node: usize, msg: RingMessage },
    /// Directory home finishes its memory/directory access for the locked
    /// transaction on `block`.
    HomeAct { block: u64 },
    /// Snooping: re-issue a nacked transaction.
    Retry { node: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HomeStage {
    AwaitInval,
    AwaitUpdate,
}

#[derive(Debug, Clone, Copy)]
struct HomeTxn {
    req: RingMessage,
    stage: Option<HomeStage>,
    /// The request was a `DirUpgrade` whose line had been invalidated in
    /// flight: it is served as a write miss, so the eventual reply must
    /// carry data (`BlockData`), never a bare `DirAck`.
    converted: bool,
}

/// The assembled timed simulator for one ring-based system and one
/// workload.
///
/// # Examples
///
/// ```
/// use ringsim_core::{RingSystem, SystemConfig};
/// use ringsim_proto::ProtocolKind;
/// use ringsim_trace::{Workload, WorkloadSpec};
///
/// let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 4);
/// let workload = Workload::new(WorkloadSpec::demo(4).with_refs(2_000)).unwrap();
/// let mut sys = RingSystem::new(cfg, workload).unwrap();
/// let report = sys.run();
/// assert!(report.proc_util > 0.0 && report.proc_util <= 1.0);
/// ```
#[derive(Debug)]
pub struct RingSystem {
    cfg: SystemConfig,
    ring: SlotRing<RingMessage>,
    nodes: Vec<Node>,
    space: AddressSpace,
    // Snooping memory state.
    mem: HomeMemory,
    // Directory state.
    dir: Directory,
    home_txns: FnvMap<u64, HomeTxn>,
    home_pending: FnvMap<u64, VecDeque<RingMessage>>,
    queue: crate::EventQueue<Event>,
    // Metrics.
    miss_lat: RunningMean,
    miss_hist: LatencyHistogram,
    upg_lat: RunningMean,
    class_lat: ClassLatencies,
    events: CoherenceEvents,
    retries: u64,
    snapshot: Option<(ringsim_ring::RingStats, Time)>,
    // Telemetry (no-op unless `attach_obs` was called).
    obs: Obs,
    obs_ring_tl: usize,
    last_progress_cycle: u64,
    /// Per-home memory bank availability (used when
    /// `model_bank_contention` is on).
    bank_free_at: Vec<Time>,
    /// Phase-indexed header arrivals: `arrival_sched[cycle % stages]` holds
    /// exactly the `(node, slot)` pairs with an arrival that cycle, in
    /// ascending node order — the inner loop visits only those instead of
    /// querying every node every cycle.
    arrival_sched: Vec<Vec<(NodeId, SlotId)>>,
    /// Nodes whose `finish_at` is set (termination check without a scan).
    finished_nodes: usize,
    /// Nodes past warm-up (measured-window check without a scan).
    measuring_nodes: usize,
    /// Earliest ring cycle at which each processor could issue again
    /// (`u64::MAX` while a transaction is in flight or the node has
    /// finished). Lets the per-cycle processor pass skip blocked nodes
    /// from one compact array instead of touching every `Node`.
    wake_at: Vec<u64>,
}

impl RingSystem {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid or the
    /// workload's processor count does not match the ring's node count.
    pub fn new(cfg: SystemConfig, workload: Workload) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.procs() != cfg.nodes() {
            return Err(ConfigError::new(
                "workload.procs",
                format!("workload has {} processors, ring has {}", workload.procs(), cfg.nodes()),
            ));
        }
        let spec = workload.spec().clone();
        let space = workload.space();
        let ring = SlotRing::new(cfg.ring)?;
        let nodes = workload
            .into_streams()
            .into_iter()
            .map(|stream| {
                Ok(Node {
                    stream,
                    cache: Cache::new(cfg.cache)?,
                    ready_at: Time::ZERO,
                    instr_carry: 0.0,
                    refs_issued: 0,
                    warmup_refs: spec.warmup_refs_per_proc,
                    total_refs: spec.warmup_refs_per_proc + spec.data_refs_per_proc,
                    measuring: false,
                    measure_start: Time::ZERO,
                    busy: Time::ZERO,
                    finish_at: None,
                    txn: None,
                    probe_q: RingBuf::new(),
                    block_q: RingBuf::new(),
                    wb_buffer: HashSet::new(),
                    pending_fwds: Vec::new(),
                    misses: 0,
                    miss_lat: LatencyHistogram::new(),
                })
            })
            .collect::<Result<Vec<_>, ConfigError>>()?;
        let n = nodes.len();
        let arrival_sched = ring.layout().arrival_schedule();
        Ok(Self {
            cfg,
            ring,
            nodes,
            space,
            mem: HomeMemory::new(),
            dir: Directory::new(n),
            home_txns: FnvMap::default(),
            home_pending: FnvMap::default(),
            queue: crate::EventQueue::new(),
            miss_lat: RunningMean::default(),
            miss_hist: LatencyHistogram::new(),
            upg_lat: RunningMean::default(),
            class_lat: ClassLatencies::default(),
            events: CoherenceEvents::default(),
            retries: 0,
            snapshot: None,
            obs: Obs::disabled(),
            obs_ring_tl: usize::MAX,
            last_progress_cycle: 0,
            bank_free_at: vec![Time::ZERO; n],
            arrival_sched,
            finished_nodes: 0,
            measuring_nodes: 0,
            wake_at: vec![0; n],
        })
    }

    /// Enables telemetry for this run: per-transaction trace events plus a
    /// `"ring"` gauge timeline (slot/probe/block occupancy, home queue
    /// depth, transmit queue depth). Recording is strictly observational —
    /// it cannot change the simulation's results.
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let mut obs = Obs::enabled(cfg, self.nodes.len());
        self.obs_ring_tl = obs.add_timeline(
            "ring",
            &["slot_occ", "probe_occ", "block_occ", "home_queue", "tx_queue"],
        );
        self.obs = obs;
    }

    /// Takes the telemetry recorder (trace buffer + timelines) after a run;
    /// `None` unless [`RingSystem::attach_obs`] was called.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        std::mem::take(&mut self.obs).into_recorder()
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        self.queue.schedule(at, ev);
    }

    fn home_of(&self, block: BlockAddr) -> NodeId {
        self.space.home_of_block(block)
    }

    /// When a memory access started at `now` at `home` completes. With bank
    /// contention modelling on, accesses to the same bank serialise; off
    /// (the paper's assumption), every access takes exactly `mem_latency`.
    fn mem_done(&mut self, home: usize, now: Time) -> Time {
        if self.cfg.model_bank_contention {
            let start = self.bank_free_at[home].max(now);
            let done = start + self.cfg.mem_latency;
            self.bank_free_at[home] = done;
            done
        } else {
            now + self.cfg.mem_latency
        }
    }

    /// Runs to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if the simulation makes no progress for a very long stretch
    /// (a protocol deadlock — a bug, caught loudly rather than hanging).
    pub fn run(&mut self) -> SimReport {
        loop {
            let now = self.ring.now();
            // 1. dispatch due events.
            while let Some((_, ev)) = self.queue.pop_due(now) {
                self.dispatch(ev, now);
            }
            // 2. processors (only the ones that could act this cycle —
            // `step_processor` is a no-op for the rest by its own guard).
            let cycle = self.ring.cycle();
            for i in 0..self.nodes.len() {
                if self.wake_at[i] <= cycle {
                    self.step_processor(i, now);
                    self.refresh_wake(i);
                }
            }
            // 3. slot arrivals — only the nodes with a header this phase.
            let phase = (self.ring.cycle() % self.arrival_sched.len() as u64) as usize;
            for k in 0..self.arrival_sched[phase].len() {
                let (n, slot) = self.arrival_sched[phase][k];
                self.handle_slot(n.index(), slot, now);
            }
            // 4. telemetry gauges (no-op unless attached).
            if self.obs.sample_due(now) {
                let values = vec![
                    self.ring.in_flight() as f64 / self.ring.layout().slot_count().max(1) as f64,
                    self.ring.in_flight_probe() as f64 / self.ring.probe_slots().max(1) as f64,
                    self.ring.in_flight_block() as f64 / self.ring.block_slots().max(1) as f64,
                    self.home_pending.values().map(VecDeque::len).sum::<usize>() as f64,
                    self.nodes.iter().map(|n| n.probe_q.len() + n.block_q.len()).sum::<usize>()
                        as f64,
                ];
                self.obs.sample(self.obs_ring_tl, now, values);
            }
            // 5. termination / watchdog.
            if self.finished_nodes == self.nodes.len() {
                break;
            }
            if self.ring.cycle() - self.last_progress_cycle > 4_000_000 {
                panic!(
                    "ring simulation deadlock at cycle {}: {:?}",
                    self.ring.cycle(),
                    self.diagnostics()
                );
            }
            self.ring.advance();
            // Start the measured ring-utilisation window once every node has
            // warmed up.
            if self.snapshot.is_none() && self.measuring_nodes == self.nodes.len() {
                self.snapshot = Some((self.ring.stats(), self.ring.now()));
            }
        }
        self.build_report()
    }

    fn diagnostics(&self) -> Vec<String> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                n.txn.as_ref().map(|t| {
                    format!(
                        "P{i}: txn {:?} on {} since {} retries {} (probe_q {}, block_q {})",
                        t.kind,
                        t.block,
                        t.start,
                        t.retries,
                        n.probe_q.len(),
                        n.block_q.len()
                    )
                })
            })
            .collect()
    }

    // ----------------------------------------------------------- processors

    /// Recomputes `wake_at[i]` from the node's blocking state. Must be
    /// called after anything that clears a transaction or moves
    /// `ready_at` (i.e. [`Self::step_processor`] and
    /// [`Self::finish_txn_at`]); skipping a node whose wake cycle has not
    /// arrived is then exactly equivalent to `step_processor`'s own
    /// early-return guard.
    fn refresh_wake(&mut self, i: usize) {
        let node = &self.nodes[i];
        self.wake_at[i] = if node.txn.is_some() || node.finish_at.is_some() {
            u64::MAX
        } else {
            let period = self.ring.config().clock_period.as_ps();
            node.ready_at.as_ps().div_ceil(period)
        };
    }

    fn step_processor(&mut self, i: usize, now: Time) {
        loop {
            let node = &mut self.nodes[i];
            if node.finish_at.is_some() || node.txn.is_some() || node.ready_at > now {
                return;
            }
            if node.refs_issued == node.total_refs {
                node.finish_at = Some(node.ready_at.max(now));
                self.finished_nodes += 1;
                return;
            }
            // Instruction time for this data reference (instruction fetches
            // never miss; fractional instruction counts carry over).
            let icycles = node.instr_carry + node.stream.instr_per_data();
            let whole = icycles.floor();
            node.instr_carry = icycles - whole;
            let cost = self.cfg.proc_cycle * (1 + whole as u64);
            if node.measuring {
                node.busy += cost;
            }
            node.ready_at += cost;
            let r = node.stream.next_ref();
            node.refs_issued += 1;
            if !node.measuring && node.refs_issued > node.warmup_refs {
                node.measuring = true;
                self.measuring_nodes += 1;
                node.measure_start = node.ready_at;
                node.busy = cost; // this reference is the first measured one
            }
            let block = r.addr.block(BLOCK_BYTES);
            let class = node.cache.classify(block, r.kind);
            if node.measuring {
                match (r.region, r.kind) {
                    (Region::Private, AccessKind::Read) => self.events.private_reads += 1,
                    (Region::Private, AccessKind::Write) => self.events.private_writes += 1,
                    (Region::Shared, AccessKind::Read) => self.events.shared_reads += 1,
                    (Region::Shared, AccessKind::Write) => self.events.shared_writes += 1,
                }
            }
            match class {
                AccessClass::Hit => {}
                AccessClass::Upgrade | AccessClass::Miss => {
                    let kind = match (class, r.kind) {
                        (AccessClass::Upgrade, _) => TxnKind::Upgrade,
                        (_, AccessKind::Read) => TxnKind::Read,
                        (_, AccessKind::Write) => TxnKind::Write,
                    };
                    let start = self.nodes[i].ready_at;
                    self.nodes[i].txn = Some(Txn {
                        block,
                        kind,
                        region: r.region,
                        start,
                        self_owner: false,
                        local_path: false,
                        local_data_ready: Time::ZERO,
                        poisoned: false,
                        invalidated: 0,
                        retries: 0,
                    });
                    let op = match kind {
                        TxnKind::Read => "read",
                        TxnKind::Write => "write",
                        TxnKind::Upgrade => "upgrade",
                    };
                    self.obs.txn_begin(i, op, block.raw(), start);
                    self.issue_txn(i, now.max(start));
                    return;
                }
            }
        }
    }

    /// Queues `msg` for transmission no earlier than `at` (a transaction's
    /// messages must not enter the ring before the processor has actually
    /// issued the reference).
    fn send_no_earlier(&mut self, i: usize, msg: RingMessage, at: Time) {
        if at > self.ring.now() {
            self.schedule(at, Event::Send { node: i, msg });
        } else {
            self.enqueue_msg(i, msg, at);
        }
    }

    fn issue_txn(&mut self, i: usize, now: Time) {
        let me = NodeId::new(i);
        let (block, kind) = {
            let t = self.nodes[i].txn.as_ref().expect("issue without txn");
            (t.block, t.kind)
        };
        let home = self.home_of(block);
        match self.cfg.protocol {
            ProtocolKind::Snooping => {
                let local_clean = home == me && !self.mem.is_dirty(block);
                let t = self.nodes[i].txn.as_mut().expect("txn");
                t.self_owner = false;
                t.local_path = false;
                match kind {
                    TxnKind::Read if local_clean => {
                        t.local_path = true;
                        let done = self.mem_done(i, now);
                        self.schedule(done, Event::Complete { node: i });
                    }
                    TxnKind::Read => {
                        let probe = RingMessage::new(MsgKind::SnoopRead, block, me, me);
                        self.send_no_earlier(i, probe, now);
                    }
                    TxnKind::Write => {
                        if local_clean {
                            t.self_owner = true;
                            t.local_data_ready = Time::ZERO; // set below
                            self.mem.set_dirty(block);
                        }
                        if self.nodes[i].txn.as_ref().is_some_and(|t| t.self_owner) {
                            let ready = self.mem_done(i, now);
                            if let Some(t) = self.nodes[i].txn.as_mut() {
                                t.local_data_ready = ready;
                            }
                        }
                        let probe = RingMessage::new(MsgKind::SnoopWrite, block, me, me);
                        self.send_no_earlier(i, probe, now);
                    }
                    TxnKind::Upgrade => {
                        if local_clean {
                            t.self_owner = true;
                            self.mem.set_dirty(block);
                        }
                        let probe = RingMessage::new(MsgKind::SnoopUpgrade, block, me, me);
                        self.send_no_earlier(i, probe, now);
                    }
                }
            }
            ProtocolKind::Directory => {
                let mk = match kind {
                    TxnKind::Read => MsgKind::DirRead,
                    TxnKind::Write => MsgKind::DirWrite,
                    TxnKind::Upgrade => MsgKind::DirUpgrade,
                };
                let req = RingMessage::new(mk, block, me, home);
                if home == me {
                    if now > self.ring.now() {
                        // Deliver to our own home side once the reference
                        // actually issues.
                        self.schedule(now, Event::Send { node: i, msg: req });
                    } else {
                        self.home_receive(req, now);
                    }
                } else {
                    self.send_no_earlier(i, req, now);
                }
            }
            ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => {
                unreachable!("rejected by SystemConfig::validate")
            }
        }
    }

    // ------------------------------------------------------------- events

    fn dispatch(&mut self, ev: Event, now: Time) {
        match ev {
            Event::Complete { node } => self.complete_local(node, now),
            Event::Send { node, msg } => self.enqueue_msg(node, msg, now),
            Event::HomeAct { block } => self.home_act(BlockAddr::new(block), now),
            Event::Retry { node } => {
                if self.nodes[node].txn.is_some() {
                    self.issue_txn(node, now);
                }
            }
        }
    }

    /// Completes a transaction that needed no reply message (local clean
    /// read, or self-owned write waiting for memory + probe return).
    fn complete_local(&mut self, i: usize, now: Time) {
        let Some(t) = self.nodes[i].txn.clone() else { return };
        match t.kind {
            TxnKind::Read => {
                if !t.poisoned {
                    self.fill(i, t.block, LineState::Rs, now);
                }
                self.finish_txn(i, now, None);
            }
            TxnKind::Write => {
                self.fill(i, t.block, LineState::We, now);
                self.finish_txn(i, now, None);
            }
            TxnKind::Upgrade => {
                let ok = self.nodes[i].cache.promote(t.block);
                debug_assert!(ok, "self-owned upgrade failed to promote");
                self.finish_txn(i, now, None);
            }
        }
    }

    fn enqueue_msg(&mut self, i: usize, msg: RingMessage, now: Time) {
        if msg.dst == msg.src && !msg.kind.returns_to_source() {
            // Local delivery (home == requester replies, local write-backs).
            self.deliver(i, msg, now);
            return;
        }
        match msg.class() {
            MsgClass::Probe => self.nodes[i].probe_q.push_back(msg),
            MsgClass::Block => self.nodes[i].block_q.push_back(msg),
        }
    }

    // ------------------------------------------------------------- slots

    fn handle_slot(&mut self, i: usize, slot: SlotId, now: Time) {
        let me = NodeId::new(i);
        let occupied = self.ring.peek(slot).is_some();
        if occupied {
            let msg = *self.ring.peek(slot).expect("occupied");
            let removes = msg.dst == me && (!msg.kind.returns_to_source() || msg.src == me);
            if removes {
                let msg = self.ring.remove(slot, me);
                self.last_progress_cycle = self.ring.cycle();
                self.deliver(i, msg, now);
            } else {
                self.snoop(i, slot);
            }
        } else {
            self.try_transmit(i, slot);
        }
    }

    fn try_transmit(&mut self, i: usize, slot: SlotId) {
        let me = NodeId::new(i);
        let kind = self.ring.kind_of(slot);
        let q = match kind {
            SlotKind::Block => &mut self.nodes[i].block_q,
            _ => &mut self.nodes[i].probe_q,
        };
        // First queued message that fits this slot (parity filter for
        // probes).
        let parity = kind.parity();
        let pos = q.iter().position(|m| match kind {
            SlotKind::Block => true,
            _ => parity.accepts(m.block.is_even()),
        });
        if let Some(pos) = pos {
            let msg = q.remove(pos).expect("position valid");
            if self.ring.try_insert(slot, me, msg).is_err() {
                // Anti-starvation rule: put it back, try next slot.
                let q = match kind {
                    SlotKind::Block => &mut self.nodes[i].block_q,
                    _ => &mut self.nodes[i].probe_q,
                };
                q.push_front(msg);
            } else {
                self.last_progress_cycle = self.ring.cycle();
            }
        }
    }

    /// A message passes node `i` without being removed: snooping actions.
    fn snoop(&mut self, i: usize, slot: SlotId) {
        let me = NodeId::new(i);
        let msg = *self.ring.peek(slot).expect("occupied");
        match msg.kind {
            MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade => {
                self.snoop_probe(i, slot, msg);
            }
            MsgKind::DirInval if msg.requester != me => {
                let state = self.nodes[i].cache.state_of(msg.block);
                match transitions::snooper_action(state, msg.kind) {
                    SnoopAction::Invalidate => {
                        // Presence bits are updated wholesale when the
                        // multicast returns to the home.
                        self.nodes[i].cache.snoop_invalidate(msg.block);
                    }
                    SnoopAction::Ignore => {}
                    SnoopAction::SupplyInvalidate | SnoopAction::SupplyDowngrade => {
                        unreachable!("multicast invalidation never asks a cache for data")
                    }
                }
                self.poison_pending_read(i, msg.block);
            }
            _ => {}
        }
    }

    fn poison_pending_read(&mut self, i: usize, block: BlockAddr) {
        if let Some(t) = self.nodes[i].txn.as_mut() {
            if t.block == block && t.kind == TxnKind::Read {
                t.poisoned = true;
            }
        }
    }

    /// The home is ordering `requester`'s transaction on `block` *now*: a
    /// poison mark left by a multicast that completed before this
    /// serialisation point is stale (the fill is ordered after that write
    /// and may be cached). Only an invalidation arriving after this moment
    /// may poison the fill.
    fn unpoison(&mut self, requester: NodeId, block: BlockAddr) {
        if let Some(t) = self.nodes[requester.index()].txn.as_mut() {
            if t.block == block {
                t.poisoned = false;
            }
        }
    }

    fn snoop_probe(&mut self, i: usize, slot: SlotId, msg: RingMessage) {
        let me = NodeId::new(i);
        debug_assert_ne!(msg.src, me, "source does not snoop its own probe");
        let block = msg.block;
        // A node with its own transaction in flight on this block does not
        // participate: conflicts resolve through the home's dirty bit and
        // the requester's retry.
        if let Some(t) = &self.nodes[i].txn {
            if t.block == block {
                if msg.kind != MsgKind::SnoopRead && t.kind == TxnKind::Read {
                    self.poison_pending_read(i, block);
                }
                return;
            }
        }
        let state = self.nodes[i].cache.state_of(block);
        let home = self.home_of(block);
        let supply = self.cfg.supply_latency;
        let mem = self.cfg.mem_latency;
        let now = self.ring.now();
        let data_reply =
            RingMessage::for_requester(MsgKind::BlockData, block, me, msg.requester, msg.requester);
        // Cache side: the pure table decides, this function adds timing.
        match transitions::snooper_action(state, msg.kind) {
            SnoopAction::SupplyDowngrade => {
                // Dirty owner: downgrade, ack, supply, refresh memory.
                self.nodes[i].cache.snoop_downgrade(block);
                if let Some(m) = self.ring.peek_mut(slot) {
                    m.acked = true;
                }
                let data = data_reply.with_from_dirty(true);
                self.schedule(now + supply, Event::Send { node: i, msg: data });
                let wb = RingMessage::new(MsgKind::WriteBack, block, me, home);
                self.schedule(now + supply, Event::Send { node: i, msg: wb });
            }
            SnoopAction::SupplyInvalidate => {
                // Dirty owner: supply and relinquish.
                self.nodes[i].cache.snoop_invalidate(block);
                if let Some(m) = self.ring.peek_mut(slot) {
                    m.acked = true;
                }
                let data = data_reply.with_from_dirty(true);
                self.schedule(now + supply, Event::Send { node: i, msg: data });
            }
            SnoopAction::Invalidate => {
                self.nodes[i].cache.snoop_invalidate(block);
                self.credit_invalidation(msg.requester, block);
            }
            SnoopAction::Ignore => {}
        }
        // Home side: the dirty bit arbitrates whether memory answers. If
        // dirty, the (old or pending) owner responds instead.
        if me == home {
            match transitions::home_snoop_action(self.mem.is_dirty(block), msg.kind) {
                HomeSnoopAction::Supply => {
                    if let Some(m) = self.ring.peek_mut(slot) {
                        m.acked = true;
                    }
                    let done = self.mem_done(i, now);
                    self.schedule(done, Event::Send { node: i, msg: data_reply });
                }
                HomeSnoopAction::SupplyClaim => {
                    if let Some(m) = self.ring.peek_mut(slot) {
                        m.acked = true;
                    }
                    self.schedule(now + mem, Event::Send { node: i, msg: data_reply });
                    self.mem.set_dirty(block);
                }
                HomeSnoopAction::AckClaim => {
                    if let Some(m) = self.ring.peek_mut(slot) {
                        m.acked = true;
                    }
                    self.mem.set_dirty(block);
                }
                HomeSnoopAction::Silent => {}
            }
        }
    }

    fn credit_invalidation(&mut self, requester: NodeId, block: BlockAddr) {
        if let Some(t) = self.nodes[requester.index()].txn.as_mut() {
            if t.block == block {
                t.invalidated += 1;
            }
        }
    }

    // ----------------------------------------------------------- delivery

    fn deliver(&mut self, i: usize, msg: RingMessage, now: Time) {
        match msg.kind {
            MsgKind::SnoopRead | MsgKind::SnoopWrite | MsgKind::SnoopUpgrade => {
                self.probe_returned(i, msg, now);
            }
            MsgKind::DirRead | MsgKind::DirWrite | MsgKind::DirUpgrade => {
                self.home_receive(msg, now);
            }
            MsgKind::DirFwdRead | MsgKind::DirFwdWrite => {
                // A forward can always be served from the write-back buffer,
                // even while the target's own re-miss on the block is in
                // flight — parking it would deadlock the home (which holds
                // the lock for the forwarded requester) against the target's
                // queued request.
                let pending = self.nodes[i].txn.as_ref().is_some_and(|t| t.block == msg.block)
                    && !self.nodes[i].wb_buffer.contains(&msg.block.raw());
                if pending {
                    self.nodes[i].pending_fwds.push(msg);
                } else {
                    self.serve_forward(i, msg, now);
                }
            }
            MsgKind::DirInval => self.inval_returned(msg, now),
            MsgKind::DirAck => self.ack_received(i, msg, now),
            MsgKind::BlockData => self.data_received(i, msg, now),
            MsgKind::WriteBack => match self.cfg.protocol {
                ProtocolKind::Snooping => self.mem.clear_dirty(msg.block),
                ProtocolKind::Directory => self.home_receive(msg, now),
                ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => {
                    unreachable!("rejected by SystemConfig::validate")
                }
            },
            MsgKind::MemUpdate => self.update_received(msg, now),
        }
    }

    /// A snooping probe returned to its requester.
    fn probe_returned(&mut self, i: usize, msg: RingMessage, now: Time) {
        let Some(t) = self.nodes[i].txn.clone() else { return };
        if t.block != msg.block {
            return; // stale return from a superseded attempt
        }
        let acked = msg.acked || t.self_owner;
        if !acked {
            self.retries += 1;
            self.obs.instant(i, "retry", now);
            let convert = t.kind == TxnKind::Upgrade;
            {
                let t = self.nodes[i].txn.as_mut().expect("txn");
                t.retries += 1;
                if convert {
                    t.kind = TxnKind::Write;
                }
            }
            if convert {
                // The requester's line is stale: drop it before retrying as
                // a write miss.
                self.nodes[i].cache.snoop_invalidate(msg.block);
            }
            let backoff = self.cfg.ring.clock_period * self.cfg.retry_backoff_cycles;
            self.schedule(now + backoff, Event::Retry { node: i });
            return;
        }
        self.obs.txn_mark(i, "probe", now);
        match t.kind {
            TxnKind::Upgrade => {
                // Ack observed in the following probe slot of the same type.
                let delay = if t.self_owner {
                    Time::ZERO
                } else {
                    self.cfg.ring.clock_period * self.cfg.ring.frame_stages() as u64
                };
                let ok = self.nodes[i].cache.promote(t.block);
                debug_assert!(ok, "acked upgrade failed to promote");
                let done = now + delay;
                self.finish_txn_at(i, done, None);
            }
            TxnKind::Write if t.self_owner => {
                let done = now.max(t.local_data_ready);
                self.schedule(done, Event::Complete { node: i });
            }
            _ => {
                // Data will arrive in a block message.
            }
        }
    }

    /// Data reply arrives at the requester.
    fn data_received(&mut self, i: usize, msg: RingMessage, now: Time) {
        let Some(t) = self.nodes[i].txn.clone() else {
            return;
        };
        if t.block != msg.block {
            return;
        }
        match t.kind {
            TxnKind::Read => {
                if !t.poisoned {
                    self.fill(i, t.block, LineState::Rs, now);
                }
            }
            TxnKind::Write | TxnKind::Upgrade => {
                // Upgrades converted to write misses by the home also land
                // here; either way the block arrives write-exclusive.
                self.fill(i, t.block, LineState::We, now);
            }
        }
        self.finish_txn(i, now, Some(msg));
    }

    /// Directory upgrade grant arrives at the requester.
    fn ack_received(&mut self, i: usize, msg: RingMessage, now: Time) {
        let Some(t) = self.nodes[i].txn.clone() else { return };
        if t.block != msg.block {
            return;
        }
        debug_assert_eq!(t.kind, TxnKind::Upgrade);
        let ok = self.nodes[i].cache.promote(t.block);
        debug_assert!(
            ok,
            "directory granted an upgrade for an absent line: node {i}, {msg}, state {:?}, dir {:?}",
            self.nodes[i].cache.state_of(t.block),
            self.dir.entry(t.block),
        );
        self.finish_txn(i, now, Some(msg));
    }

    /// Install a block and handle the victim it displaces.
    fn fill(&mut self, i: usize, block: BlockAddr, state: LineState, now: Time) {
        let me = NodeId::new(i);
        if let Some((victim, vstate)) = self.nodes[i].cache.fill(block, state) {
            let vhome = self.home_of(victim);
            match self.cfg.protocol {
                ProtocolKind::Snooping => {
                    if vstate.is_dirty() {
                        if vhome == me {
                            self.mem.clear_dirty(victim);
                        } else {
                            let wb = RingMessage::new(MsgKind::WriteBack, victim, me, vhome);
                            self.enqueue_msg(i, wb, now);
                        }
                        self.count_writeback(i, vhome == me);
                    }
                }
                ProtocolKind::Directory => {
                    if vstate.is_dirty() {
                        self.nodes[i].wb_buffer.insert(victim.raw());
                        let wb = RingMessage::new(MsgKind::WriteBack, victim, me, vhome);
                        if vhome == me {
                            self.home_receive(wb, now);
                        } else {
                            self.enqueue_msg(i, wb, now);
                        }
                        self.count_writeback(i, vhome == me);
                    } else {
                        // Clean replacement: presence bits refreshed with a
                        // zero-cost replacement hint (idealisation noted in
                        // DESIGN.md).
                        self.dir.remove_sharer(victim, me);
                    }
                }
                ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => {
                    unreachable!("rejected by SystemConfig::validate")
                }
            }
        }
    }

    fn count_writeback(&mut self, i: usize, local: bool) {
        if self.nodes[i].measuring {
            if local {
                self.events.writeback_local += 1;
            } else {
                self.events.writeback_remote += 1;
            }
        }
    }

    /// Finish the in-flight transaction for node `i` at time `now`.
    fn finish_txn(&mut self, i: usize, now: Time, reply: Option<RingMessage>) {
        self.finish_txn_at(i, now, reply);
    }

    fn finish_txn_at(&mut self, i: usize, done: Time, reply: Option<RingMessage>) {
        let t = self.nodes[i].txn.take().expect("finishing absent txn");
        // Serve any forwards that waited for this fill (directory mode).
        let fwds = std::mem::take(&mut self.nodes[i].pending_fwds);
        for fwd in fwds {
            if fwd.block == t.block {
                self.serve_forward(i, fwd, done);
            } else {
                self.nodes[i].pending_fwds.push(fwd);
            }
        }
        if sanitize::sanitize_enabled() {
            self.sanitize_retired_block(t.block);
        }
        let node = &mut self.nodes[i];
        node.ready_at = node.ready_at.max(done);
        self.last_progress_cycle = self.ring.cycle();
        let latency = done.saturating_sub(t.start);
        if node.measuring {
            let is_upgrade_final = t.kind == TxnKind::Upgrade;
            let class;
            if is_upgrade_final {
                self.upg_lat.push_time_ns(latency);
                self.class_lat.upgrade.record_time(latency);
                class = "upgrade";
            } else {
                self.miss_lat.push_time_ns(latency);
                self.miss_hist.record_time(latency);
                node.misses += 1;
                node.miss_lat.record_time(latency);
                // Class bucket from the requester's observations. A reply
                // whose source is the requester itself came from the local
                // home (directory mode serves local misses without the
                // ring).
                let me = NodeId::new(i);
                if t.local_path || reply.is_some_and(|m| m.src == me && !m.from_dirty) {
                    self.class_lat.local.record_time(latency);
                    class = "local";
                } else if reply.is_some_and(|m| m.from_dirty) {
                    self.class_lat.dirty.record_time(latency);
                    class = "dirty";
                } else {
                    self.class_lat.clean_remote.record_time(latency);
                    class = "clean_remote";
                }
            }
            self.obs.txn_end(i, if is_upgrade_final { "upgrade" } else { "miss" }, class, done);
            if self.cfg.protocol == ProtocolKind::Snooping {
                self.classify_snooping(i, &t, reply);
            }
        } else {
            // Warmup transactions do not count toward any metric; keep the
            // trace consistent with the histograms by dropping them too.
            self.obs.txn_abandon(i);
        }
        self.refresh_wake(i);
    }

    /// Snooping-mode event classification, performed at completion from the
    /// transaction's own observations (who supplied, what got invalidated).
    fn classify_snooping(&mut self, i: usize, t: &Txn, reply: Option<RingMessage>) {
        let me = NodeId::new(i);
        let block = t.block;
        let home = self.home_of(block);
        let local = home == me;
        let ev = &mut self.events;
        match t.region {
            Region::Private => {
                if t.kind != TxnKind::Upgrade {
                    ev.private_misses += 1;
                }
                if t.kind == TxnKind::Upgrade && t.invalidated == 0 {
                    if local {
                        ev.upgrade_nosharers_local += 1;
                    } else {
                        ev.upgrade_nosharers_remote += 1;
                    }
                }
                return;
            }
            Region::Shared => {}
        }
        let dirty_src = reply.and_then(|m| if m.from_dirty { Some(m.src) } else { None });
        match t.kind {
            TxnKind::Read => match dirty_src {
                Some(d) => {
                    if dirty_on_path(me, home, d, self.cfg.nodes()) {
                        ev.read_dirty_2 += 1;
                    } else {
                        ev.read_dirty_1 += 1;
                    }
                }
                None => {
                    if local {
                        ev.read_clean_local += 1;
                    } else {
                        ev.read_clean_remote += 1;
                    }
                }
            },
            TxnKind::Write => match dirty_src {
                Some(d) => {
                    if dirty_on_path(me, home, d, self.cfg.nodes()) {
                        ev.write_dirty_2 += 1;
                    } else {
                        ev.write_dirty_1 += 1;
                    }
                }
                None => {
                    match (t.invalidated > 0, local) {
                        (false, true) => ev.write_nosharers_local += 1,
                        (false, false) => ev.write_nosharers_remote += 1,
                        (true, true) => ev.write_sharers_local += 1,
                        (true, false) => ev.write_sharers_remote += 1,
                    }
                    ev.invalidated_copies += t.invalidated;
                }
            },
            TxnKind::Upgrade => {
                match (t.invalidated > 0, local) {
                    (false, true) => ev.upgrade_nosharers_local += 1,
                    (false, false) => ev.upgrade_nosharers_remote += 1,
                    (true, true) => ev.upgrade_sharers_local += 1,
                    (true, false) => ev.upgrade_sharers_remote += 1,
                }
                ev.invalidated_copies += t.invalidated;
            }
        }
    }

    // ------------------------------------------------ directory home side

    fn home_receive(&mut self, msg: RingMessage, now: Time) {
        debug_assert_eq!(self.cfg.protocol, ProtocolKind::Directory);
        let block = msg.block;
        if self.dir.try_lock(block) {
            self.home_txns.insert(block.raw(), HomeTxn { req: msg, stage: None, converted: false });
            let home = msg.dst.index();
            let done = self.mem_done(home, now);
            self.schedule(done, Event::HomeAct { block: block.raw() });
        } else {
            self.home_pending.entry(block.raw()).or_default().push_back(msg);
            self.retries += 1;
        }
    }

    fn unlock_and_drain(&mut self, block: BlockAddr, now: Time) {
        self.dir.unlock(block);
        self.home_txns.remove(&block.raw());
        if let Some(queue) = self.home_pending.get_mut(&block.raw()) {
            if let Some(next) = queue.pop_front() {
                if queue.is_empty() {
                    self.home_pending.remove(&block.raw());
                }
                self.home_receive(next, now);
            } else {
                self.home_pending.remove(&block.raw());
            }
        }
    }

    fn home_act(&mut self, block: BlockAddr, now: Time) {
        let ht = *self.home_txns.get(&block.raw()).expect("home txn present");
        let req = ht.req;
        let home = req.dst;
        debug_assert_eq!(home, self.home_of(block));
        if matches!(req.kind, MsgKind::DirRead | MsgKind::DirWrite | MsgKind::DirUpgrade) {
            self.obs.txn_mark(req.requester.index(), "home", now);
        }
        match req.kind {
            MsgKind::WriteBack => {
                let evictor = req.src;
                // The buffer entry is the liveness token for an in-flight
                // write-back: `reclaim_own_writeback` clears it when the
                // evictor's own re-miss overtakes the message, and the home
                // must then drop the stale arrival — by the time it lands the
                // block may already be granted back to the evictor, and
                // clearing the entry would orphan that copy.
                let live = self.nodes[evictor.index()].wb_buffer.remove(&block.raw());
                let entry = self.dir.entry(block);
                if live && entry.owner == Some(evictor) {
                    self.dir.remove_sharer(block, evictor);
                }
                self.unlock_and_drain(block, now);
            }
            MsgKind::DirRead => {
                self.unpoison(req.requester, block);
                self.home_read(req, now);
            }
            MsgKind::DirWrite => {
                self.unpoison(req.requester, block);
                self.home_write(req, now, false);
            }
            MsgKind::DirUpgrade => {
                self.unpoison(req.requester, block);
                let entry = self.dir.entry(block);
                if transitions::upgrade_must_convert(&entry, req.requester) {
                    // The upgrader's line was invalidated while the request
                    // waited: serve it as a write miss instead.
                    self.home_write(req, now, true);
                } else {
                    debug_assert!(entry.owner.is_none(), "upgrader coexists with an owner");
                    self.home_upgrade(req, now);
                }
            }
            _ => unreachable!("home_act on non-request {:?}", req.kind),
        }
    }

    fn measuring_requester(&self, req: &RingMessage) -> bool {
        self.nodes[req.requester.index()].measuring
    }

    fn requester_region(&self, req: &RingMessage) -> Region {
        self.nodes[req.requester.index()].txn.as_ref().map_or(Region::Shared, |t| t.region)
    }

    /// The home is about to multicast an invalidation: it also invalidates
    /// its own cached copy (it observes its own probe immediately) unless it
    /// is the exempt requester.
    fn home_self_invalidate(&mut self, home: NodeId, requester: NodeId, block: BlockAddr) {
        if home != requester {
            self.nodes[home.index()].cache.snoop_invalidate(block);
            self.poison_pending_read(home.index(), block);
        }
    }

    /// If the directory says the requester itself owns the block, its
    /// write-back must be in flight: the home pulls it in place (clearing
    /// the evictor's buffer models the acknowledgment) so the request can
    /// proceed against clean memory.
    fn reclaim_own_writeback(&mut self, block: BlockAddr, requester: NodeId) {
        let entry = self.dir.entry(block);
        if transitions::must_reclaim_writeback(&entry, requester) {
            debug_assert!(
                self.nodes[requester.index()].wb_buffer.contains(&block.raw()),
                "directory owner misses without a write-back in flight"
            );
            self.dir.remove_sharer(block, requester);
            self.nodes[requester.index()].wb_buffer.remove(&block.raw());
        }
    }

    fn home_read(&mut self, req: RingMessage, now: Time) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        self.reclaim_own_writeback(block, requester);
        let entry = self.dir.entry(block);
        let measuring = self.measuring_requester(&req);
        let region = self.requester_region(&req);
        let local = home == requester;
        match transitions::dir_action(&entry, requester, DirRequest::Read) {
            DirAction::ForwardRead { owner: d } => {
                debug_assert_ne!(d, requester, "requester misses on a block it owns");
                if measuring {
                    if region == Region::Private {
                        self.events.private_misses += 1;
                    } else if dirty_on_path(requester, home, d, self.cfg.nodes()) {
                        self.events.read_dirty_2 += 1;
                    } else {
                        self.events.read_dirty_1 += 1;
                    }
                }
                let fwd =
                    RingMessage::for_requester(MsgKind::DirFwdRead, block, home, d, requester);
                // Record the requester now, not when the MemUpdate returns:
                // the requester can fill (data comes straight from the owner)
                // and evict again before the update reaches the home, and its
                // replacement hint must find the presence bit to clear.
                self.dir.add_sharer(block, requester);
                self.home_txns.insert(
                    block.raw(),
                    HomeTxn { req, stage: Some(HomeStage::AwaitUpdate), converted: false },
                );
                self.schedule(now, Event::Send { node: home.index(), msg: fwd });
            }
            DirAction::GrantData => {
                if measuring {
                    if region == Region::Private {
                        self.events.private_misses += 1;
                    } else if local {
                        self.events.read_clean_local += 1;
                    } else {
                        self.events.read_clean_remote += 1;
                    }
                }
                self.dir.add_sharer(block, requester);
                let data = RingMessage::for_requester(
                    MsgKind::BlockData,
                    block,
                    home,
                    requester,
                    requester,
                );
                self.schedule(now, Event::Send { node: home.index(), msg: data });
                self.unlock_and_drain(block, now);
            }
            DirAction::ForwardWrite { .. } | DirAction::InvalidateSharers | DirAction::GrantAck => {
                unreachable!("read request dispatched to a write action")
            }
        }
    }

    fn home_write(&mut self, req: RingMessage, now: Time, converted_upgrade: bool) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        self.reclaim_own_writeback(block, requester);
        let entry = self.dir.entry(block);
        let measuring = self.measuring_requester(&req);
        let region = self.requester_region(&req);
        let local = home == requester;
        let others = entry.other_sharers(requester);
        match transitions::dir_action(&entry, requester, DirRequest::Write) {
            DirAction::ForwardWrite { owner: d } => {
                debug_assert_ne!(d, requester);
                if measuring {
                    if region == Region::Private {
                        self.events.private_misses += 1;
                    } else if dirty_on_path(requester, home, d, self.cfg.nodes()) {
                        self.events.write_dirty_2 += 1;
                    } else {
                        self.events.write_dirty_1 += 1;
                    }
                }
                let fwd =
                    RingMessage::for_requester(MsgKind::DirFwdWrite, block, home, d, requester);
                self.home_txns.insert(
                    block.raw(),
                    HomeTxn {
                        req,
                        stage: Some(HomeStage::AwaitUpdate),
                        converted: converted_upgrade,
                    },
                );
                self.schedule(now, Event::Send { node: home.index(), msg: fwd });
            }
            action @ (DirAction::InvalidateSharers | DirAction::GrantData) => {
                if measuring {
                    if region == Region::Private {
                        if !converted_upgrade {
                            self.events.private_misses += 1;
                        }
                    } else {
                        match (others != 0, local) {
                            (false, true) => self.events.write_nosharers_local += 1,
                            (false, false) => self.events.write_nosharers_remote += 1,
                            (true, true) => self.events.write_sharers_local += 1,
                            (true, false) => self.events.write_sharers_remote += 1,
                        }
                        self.events.invalidated_copies += others.count_ones() as u64;
                    }
                }
                if action == DirAction::InvalidateSharers {
                    self.home_self_invalidate(home, requester, block);
                    let inval =
                        RingMessage::for_requester(MsgKind::DirInval, block, home, home, requester);
                    self.home_txns.insert(
                        block.raw(),
                        HomeTxn {
                            req,
                            stage: Some(HomeStage::AwaitInval),
                            converted: converted_upgrade,
                        },
                    );
                    self.schedule(now, Event::Send { node: home.index(), msg: inval });
                } else {
                    self.dir.set_owner(block, requester);
                    let data = RingMessage::for_requester(
                        MsgKind::BlockData,
                        block,
                        home,
                        requester,
                        requester,
                    );
                    self.schedule(now, Event::Send { node: home.index(), msg: data });
                    self.unlock_and_drain(block, now);
                }
            }
            DirAction::ForwardRead { .. } | DirAction::GrantAck => {
                unreachable!("write request dispatched to a read/upgrade action")
            }
        }
    }

    fn home_upgrade(&mut self, req: RingMessage, now: Time) {
        let block = req.block;
        let home = req.dst;
        let requester = req.requester;
        let entry = self.dir.entry(block);
        let others = entry.other_sharers(requester);
        let measuring = self.measuring_requester(&req);
        let region = self.requester_region(&req);
        let local = home == requester;
        if measuring && region == Region::Shared {
            match (others != 0, local) {
                (false, true) => self.events.upgrade_nosharers_local += 1,
                (false, false) => self.events.upgrade_nosharers_remote += 1,
                (true, true) => self.events.upgrade_sharers_local += 1,
                (true, false) => self.events.upgrade_sharers_remote += 1,
            }
            self.events.invalidated_copies += others.count_ones() as u64;
        } else if measuring && region == Region::Private && others == 0 {
            if local {
                self.events.upgrade_nosharers_local += 1;
            } else {
                self.events.upgrade_nosharers_remote += 1;
            }
        }
        match transitions::dir_action(&entry, requester, DirRequest::Upgrade) {
            DirAction::InvalidateSharers => {
                self.home_self_invalidate(home, requester, block);
                let inval =
                    RingMessage::for_requester(MsgKind::DirInval, block, home, home, requester);
                self.home_txns.insert(
                    block.raw(),
                    HomeTxn { req, stage: Some(HomeStage::AwaitInval), converted: false },
                );
                self.schedule(now, Event::Send { node: home.index(), msg: inval });
            }
            DirAction::GrantAck => {
                self.dir.set_owner(block, requester);
                let ack =
                    RingMessage::for_requester(MsgKind::DirAck, block, home, requester, requester);
                self.schedule(now, Event::Send { node: home.index(), msg: ack });
                self.unlock_and_drain(block, now);
            }
            DirAction::ForwardRead { .. }
            | DirAction::ForwardWrite { .. }
            | DirAction::GrantData => {
                unreachable!("well-formed upgrade dispatched to a miss action")
            }
        }
    }

    /// The multicast invalidation returned to the home: reply to the
    /// requester and commit.
    fn inval_returned(&mut self, msg: RingMessage, now: Time) {
        let block = msg.block;
        let ht = *self.home_txns.get(&block.raw()).expect("inval context");
        debug_assert_eq!(ht.stage, Some(HomeStage::AwaitInval));
        let req = ht.req;
        let home = req.dst;
        let requester = req.requester;
        self.dir.set_owner(block, requester);
        let reply_kind = match req.kind {
            // A converted upgrade is served as a write miss: the requester's
            // line is gone, so the reply must carry the block.
            MsgKind::DirUpgrade if !ht.converted => MsgKind::DirAck,
            _ => MsgKind::BlockData,
        };
        let reply = RingMessage::for_requester(reply_kind, block, home, requester, requester);
        self.schedule(now, Event::Send { node: home.index(), msg: reply });
        self.unlock_and_drain(block, now);
    }

    /// The dirty node's memory/directory refresh arrived at the home.
    fn update_received(&mut self, msg: RingMessage, now: Time) {
        let block = msg.block;
        let ht = *self.home_txns.get(&block.raw()).expect("update context");
        debug_assert_eq!(ht.stage, Some(HomeStage::AwaitUpdate));
        let req = ht.req;
        let requester = req.requester;
        let d = msg.src;
        match req.kind {
            MsgKind::DirRead => {
                // The requester's presence bit was set when the forward was
                // launched (see `home_read`); only the old owner's status
                // needs settling here.
                self.dir.clear_owner(block);
                if !msg.retained {
                    self.dir.remove_sharer(block, d);
                }
            }
            _ => {
                self.dir.set_owner(block, requester);
            }
        }
        self.unlock_and_drain(block, now);
    }

    /// A forward reached the (current or former) dirty node: supply data.
    fn serve_forward(&mut self, i: usize, fwd: RingMessage, now: Time) {
        let me = NodeId::new(i);
        let block = fwd.block;
        let home = fwd.src;
        let state = self.nodes[i].cache.state_of(block);
        let buffered = self.nodes[i].wb_buffer.contains(&block.raw());
        debug_assert!(
            state == LineState::We || buffered,
            "forward to a node without the data: {fwd} (state {state:?})"
        );
        if state != LineState::We {
            // Serving from the write-back buffer hands the data over; the
            // buffered entry — and with it the still-circulating WriteBack
            // message — is consumed, or the stale arrival could clear a
            // later re-grant of the block (its buffer bit is the liveness
            // token the home checks).
            self.nodes[i].wb_buffer.remove(&block.raw());
        }
        let retained = match fwd.kind {
            MsgKind::DirFwdRead => {
                if state == LineState::We {
                    self.nodes[i].cache.snoop_downgrade(block);
                    true
                } else {
                    false
                }
            }
            MsgKind::DirFwdWrite => {
                if state == LineState::We {
                    self.nodes[i].cache.snoop_invalidate(block);
                }
                false
            }
            _ => unreachable!("serve_forward on non-forward"),
        };
        let data =
            RingMessage::for_requester(MsgKind::BlockData, block, me, fwd.requester, fwd.requester)
                .with_from_dirty(true);
        let update = RingMessage::new(MsgKind::MemUpdate, block, me, home).with_retained(retained);
        let at = now + self.cfg.supply_latency;
        self.obs.txn_mark(fwd.requester.index(), "forward", at);
        self.schedule(at, Event::Send { node: i, msg: data });
        self.schedule(at, Event::Send { node: i, msg: update });
    }

    // ------------------------------------------------------------ report

    fn build_report(&mut self) -> SimReport {
        let (per_node, proc_util, sim_end) =
            crate::report::summarize_nodes(self.nodes.iter().map(|n| NodeMeasure {
                finished_at: n.finish_at.expect("all nodes finished"),
                measure_start: n.measure_start,
                busy: n.busy,
                misses: n.misses,
                miss_lat: &n.miss_lat,
            }));
        let total_stats = self.ring.stats();
        let (base, _) = self.snapshot.unwrap_or((ringsim_ring::RingStats::default(), Time::ZERO));
        let window = ringsim_ring::RingStats {
            cycles: total_stats.cycles - base.cycles,
            inserted: total_stats.inserted - base.inserted,
            removed: total_stats.removed - base.removed,
            occupied_slot_cycles: total_stats.occupied_slot_cycles - base.occupied_slot_cycles,
            occupied_probe_cycles: total_stats.occupied_probe_cycles - base.occupied_probe_cycles,
            occupied_block_cycles: total_stats.occupied_block_cycles - base.occupied_block_cycles,
        };
        let report = SimReport {
            protocol: self.cfg.protocol.name().to_owned(),
            nodes: self.cfg.nodes(),
            proc_cycle: self.cfg.proc_cycle,
            sim_end,
            proc_util,
            ring_util: window.slot_utilization(self.ring.layout().slot_count()),
            probe_util: window.probe_utilization(self.ring.probe_slots()),
            block_util: window.block_utilization(self.ring.block_slots()),
            miss_latency: self.miss_lat,
            miss_histogram: self.miss_hist.clone(),
            upgrade_latency: self.upg_lat,
            class_latencies: self.class_lat.clone(),
            events: self.events,
            retries: self.retries,
            per_node,
        };
        if ringsim_obs::global_metrics_enabled() {
            ringsim_obs::global_record(&report.metrics_summary());
        }
        report
    }

    /// Coherence state of `block` in node `i`'s cache (inspection hook for
    /// tests and tools).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cache_state(&self, i: usize, block: BlockAddr) -> LineState {
        self.nodes[i].cache.state_of(block)
    }

    /// Accumulated event counts so far (also available in the final
    /// report).
    #[must_use]
    pub fn events(&self) -> CoherenceEvents {
        self.events
    }

    /// Runtime sanitizer hook: re-checks the shared coherence invariants
    /// for one block at a transaction-retire boundary. The carve-outs match
    /// the `ringsim-check` model checker, so these hold at any instant.
    fn sanitize_retired_block(&self, block: BlockAddr) {
        let states: Vec<LineState> = self.nodes.iter().map(|n| n.cache.state_of(block)).collect();
        let conflicting: Vec<bool> =
            self.nodes.iter().map(|n| n.txn.as_ref().is_some_and(|t| t.block == block)).collect();
        sanitize::check_swmr(block, &states, &conflicting);
        if self.cfg.protocol == ProtocolKind::Snooping {
            sanitize::check_we_implies_dirty(block, &states, self.mem.is_dirty(block));
        }
    }

    /// Checks global single-writer / reader-consistency invariants over all
    /// caches (test helper; O(cache lines × nodes)).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_coherence(&self) -> Result<(), String> {
        let mut writers: HashMap<u64, NodeId> = HashMap::new();
        let mut readers: HashMap<u64, Vec<NodeId>> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for (block, state) in node.cache.resident_blocks() {
                match state {
                    LineState::We => {
                        if let Some(prev) = writers.insert(block.raw(), NodeId::new(i)) {
                            return Err(format!("{block}: two writers {prev} and P{i}"));
                        }
                    }
                    LineState::Rs => readers.entry(block.raw()).or_default().push(NodeId::new(i)),
                    LineState::Inv => {}
                }
            }
        }
        for (&raw, &w) in &writers {
            // A writer may coexist with readers only transiently while those
            // readers hold in-flight conflicting transactions; at quiescence
            // (when this is called) there must be none.
            if let Some(rs) = readers.get(&raw) {
                let stale: Vec<_> = rs
                    .iter()
                    .filter(|r| {
                        self.nodes[r.index()].txn.as_ref().is_none_or(|t| t.block.raw() != raw)
                    })
                    .collect();
                if !stale.is_empty() {
                    return Err(format!(
                        "B{raw:#x}: writer {w} coexists with settled readers {stale:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// `true` when the dirty node lies on the requester→home segment of the
/// ring, forcing a second traversal (paper Figure 2b).
fn dirty_on_path(requester: NodeId, home: NodeId, dirty: NodeId, nodes: usize) -> bool {
    if home == requester || dirty == home {
        return false;
    }
    requester.hops_to(dirty, nodes) < requester.hops_to(home, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_trace::WorkloadSpec;

    fn run(protocol: ProtocolKind, procs: usize, refs: u64) -> (SimReport, RingSystem) {
        let cfg = SystemConfig::ring_500mhz(protocol, procs);
        let workload = Workload::new(WorkloadSpec::demo(procs).with_refs(refs)).unwrap();
        let mut sys = RingSystem::new(cfg, workload).unwrap();
        let report = sys.run();
        (report, sys)
    }

    #[test]
    fn snooping_runs_to_completion() {
        let (report, sys) = run(ProtocolKind::Snooping, 4, 3_000);
        assert!(report.proc_util > 0.0 && report.proc_util <= 1.0);
        assert!(report.ring_util > 0.0 && report.ring_util < 1.0);
        assert!(report.miss_latency.count() > 0);
        assert!(
            report.miss_latency.mean() > 100.0,
            "miss latency {} ns",
            report.miss_latency.mean()
        );
        sys.check_coherence().unwrap();
    }

    #[test]
    fn directory_runs_to_completion() {
        let (report, sys) = run(ProtocolKind::Directory, 4, 3_000);
        assert!(report.proc_util > 0.0 && report.proc_util <= 1.0);
        assert!(report.miss_latency.count() > 0);
        sys.check_coherence().unwrap();
    }

    #[test]
    fn events_match_reference_mix() {
        let (report, _) = run(ProtocolKind::Snooping, 4, 4_000);
        assert_eq!(report.events.data_refs(), 4 * 4_000);
        assert!(report.events.shared_misses() > 0);
    }

    #[test]
    fn protocols_agree_on_event_counts_roughly() {
        let (snoop, _) = run(ProtocolKind::Snooping, 4, 4_000);
        let (dir, _) = run(ProtocolKind::Directory, 4, 4_000);
        let s = snoop.events.shared_misses() as f64;
        let d = dir.events.shared_misses() as f64;
        let rel = (s - d).abs() / s.max(d);
        assert!(rel < 0.15, "snoop {s} vs dir {d} misses differ by {rel}");
    }

    #[test]
    fn snooping_miss_latency_exceeds_floor() {
        // Round trip (30 cycles = 60 ns) + memory 140 ns is the absolute
        // floor for a remote miss on an 8-node ring.
        let (report, _) = run(ProtocolKind::Snooping, 8, 2_000);
        assert!(report.miss_latency.min().unwrap_or(0.0) >= 139.0);
    }

    #[test]
    fn faster_processors_load_the_ring_more() {
        let mk = |cycle_ns| {
            let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8)
                .with_proc_cycle(Time::from_ns(cycle_ns));
            let w = Workload::new(WorkloadSpec::demo(8).with_refs(3_000)).unwrap();
            RingSystem::new(cfg, w).unwrap().run()
        };
        let slow = mk(20);
        let fast = mk(2);
        assert!(
            fast.ring_util > slow.ring_util,
            "fast {} <= slow {}",
            fast.ring_util,
            slow.ring_util
        );
    }

    #[test]
    fn directory_fig5_classes_populated() {
        let (report, _) = run(ProtocolKind::Directory, 8, 4_000);
        let (c1, d1, c2) = report.fig5_percentages();
        assert!(c1 > 0.0);
        assert!(d1 + c2 > 0.0, "demo workload has read-write sharing");
        assert!((c1 + d1 + c2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run(ProtocolKind::Snooping, 4, 2_000);
        let (b, _) = run(ProtocolKind::Snooping, 4, 2_000);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn rejects_mismatched_workload() {
        let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
        let w = Workload::new(WorkloadSpec::demo(4)).unwrap();
        assert!(RingSystem::new(cfg, w).is_err());
    }
}
