//! Allocation-free hot-path containers for the cycle-stepped simulators.
//!
//! The inner loops of [`RingSystem`](crate::RingSystem),
//! [`HierNetSim`](crate::HierNetSim) and the access-network models run
//! every interconnect cycle for tens of millions of cycles per run; the
//! `std` containers they originally used (`VecDeque` per node queue,
//! `HashMap` keyed event bodies) spend that loop hashing and reallocating.
//! This module provides the two drop-in replacements:
//!
//! * [`RingBuf`] — a power-of-two-capacity FIFO with head/length masking.
//!   Same observable semantics as `VecDeque` for the operations the
//!   simulators use (`push_back` / `pop_front` / `push_front` / indexed
//!   `remove` / in-order iteration), but with no reallocation once warm.
//! * [`Slab`] — index-keyed storage with a free list. `insert` hands out a
//!   slot, `remove` recycles it; no hashing, no per-entry allocation.
//!
//! Both are safe code (`forbid(unsafe_code)` crate); the property tests in
//! `tests/collections_prop.rs` drive them against their `std` models under
//! random operation sequences.

/// A FIFO ring buffer with power-of-two capacity and head/len masking.
///
/// Order-preserving drop-in for the `VecDeque` usage in the simulators'
/// per-node queues: elements come out in insertion order, `remove(i)`
/// closes the gap by shifting later elements down (exactly `VecDeque`'s
/// observable behaviour), and iteration runs front to back. Capacity grows
/// by doubling only when full — steady-state traffic never reallocates.
///
/// # Examples
///
/// ```
/// use ringsim_core::RingBuf;
///
/// let mut q: RingBuf<u32> = RingBuf::new();
/// q.push_back(1);
/// q.push_back(2);
/// q.push_front(0);
/// assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
/// assert_eq!(q.remove(1), Some(1));
/// assert_eq!(q.pop_front(), Some(0));
/// assert_eq!(q.pop_front(), Some(2));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RingBuf<T> {
    /// Backing storage; `buf.len()` is always a power of two (or zero
    /// before first use). `None` marks unoccupied physical slots.
    buf: Vec<Option<T>>,
    /// Physical index of the logical front element.
    head: usize,
    /// Number of live elements.
    len: usize,
}

impl<T> Default for RingBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RingBuf<T> {
    /// An empty buffer (no allocation until the first push).
    #[must_use]
    pub fn new() -> Self {
        Self { buf: Vec::new(), head: 0, len: 0 }
    }

    /// An empty buffer pre-sized for at least `cap` elements (rounded up
    /// to a power of two), so steady-state use never reallocates.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let mut rb = Self::new();
        if cap > 0 {
            rb.realloc(cap.next_power_of_two());
        }
        rb
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.buf.len().wrapping_sub(1)
    }

    fn physical(&self, logical: usize) -> usize {
        (self.head + logical) & self.mask()
    }

    /// Re-homes the contents into a fresh power-of-two allocation with the
    /// front at physical index 0.
    fn realloc(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two() && new_cap >= self.len);
        let mut next: Vec<Option<T>> = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            let idx = self.physical(i);
            next.push(self.buf[idx].take());
        }
        next.resize_with(new_cap, || None);
        self.buf = next;
        self.head = 0;
    }

    fn grow_if_full(&mut self) {
        if self.len == self.buf.len() {
            self.realloc((self.buf.len() * 2).max(4));
        }
    }

    /// Appends to the back.
    pub fn push_back(&mut self, value: T) {
        self.grow_if_full();
        let idx = self.physical(self.len);
        debug_assert!(self.buf[idx].is_none());
        self.buf[idx] = Some(value);
        self.len += 1;
    }

    /// Prepends to the front (the next `pop_front` returns it).
    pub fn push_front(&mut self, value: T) {
        self.grow_if_full();
        self.head = self.head.wrapping_sub(1) & self.mask();
        debug_assert!(self.buf[self.head].is_none());
        self.buf[self.head] = Some(value);
        self.len += 1;
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head].take();
        debug_assert!(value.is_some());
        self.head = self.physical(1);
        self.len -= 1;
        value
    }

    /// The front element, if any.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// The element at logical position `i` (0 = front).
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            None
        } else {
            self.buf[self.physical(i)].as_ref()
        }
    }

    /// Removes and returns the element at logical position `i`, shifting
    /// every later element one position toward the front (`VecDeque`
    /// semantics). `None` when out of range.
    pub fn remove(&mut self, i: usize) -> Option<T> {
        if i >= self.len {
            return None;
        }
        let at = self.physical(i);
        let removed = self.buf[at].take();
        for j in i..self.len - 1 {
            let from = self.physical(j + 1);
            let to = self.physical(j);
            self.buf[to] = self.buf[from].take();
        }
        self.len -= 1;
        removed
    }

    /// Drops all elements (capacity is kept).
    pub fn clear(&mut self) {
        for i in 0..self.len {
            let idx = self.physical(i);
            self.buf[idx] = None;
        }
        self.head = 0;
        self.len = 0;
    }

    /// Front-to-back iterator.
    pub fn iter(&self) -> RingBufIter<'_, T> {
        RingBufIter { rb: self, pos: 0 }
    }
}

impl<'a, T> IntoIterator for &'a RingBuf<T> {
    type Item = &'a T;
    type IntoIter = RingBufIter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Front-to-back borrowing iterator over a [`RingBuf`].
#[derive(Debug)]
pub struct RingBufIter<'a, T> {
    rb: &'a RingBuf<T>,
    pos: usize,
}

impl<'a, T> Iterator for RingBufIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let item = self.rb.get(self.pos)?;
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.rb.len() - self.pos.min(self.rb.len());
        (rest, Some(rest))
    }
}

impl<T> FromIterator<T> for RingBuf<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut rb = RingBuf::new();
        for v in iter {
            rb.push_back(v);
        }
        rb
    }
}

/// [`std::hash::BuildHasher`] for FNV-1a — a fast non-keyed hash for the
/// simulators' `u64`-keyed block-address maps.
///
/// `std`'s default SipHash is DoS-resistant but costs tens of cycles per
/// lookup; the coherence maps (`owners`, `present`, home-directory state)
/// are keyed by trusted internal block numbers, looked up several times
/// per miss, and never iterated in an order that reaches observable
/// output — so a cheap multiply-xor hash is both safe and deterministic.
///
/// # Examples
///
/// ```
/// use ringsim_core::FnvMap;
///
/// let mut owners: FnvMap<u64, &'static str> = FnvMap::default();
/// owners.insert(42, "node3");
/// assert_eq!(owners.get(&42), Some(&"node3"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

/// A `HashMap` using [`FnvBuildHasher`]. Construct with `FnvMap::default()`.
pub type FnvMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// Streaming FNV-1a state; see [`FnvBuildHasher`].
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        // One round over the whole word instead of eight byte rounds: the
        // maps key on block numbers, so this is the only path that matters.
        self.0 = (self.0 ^ value).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// Index-keyed storage with a free list: `insert` returns a stable slot
/// key, `remove` recycles it. The event queue's arena for in-flight event
/// bodies — replaces a `HashMap<u64, E>` whose hashing dominated
/// scheduling cost.
///
/// Slot keys are dense (bounded by the high-water mark of simultaneously
/// live entries), so the backing `Vec` stops growing once the simulation
/// reaches steady state.
///
/// # Examples
///
/// ```
/// use ringsim_core::Slab;
///
/// let mut slab: Slab<&'static str> = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), "alpha");
/// let c = slab.insert("gamma"); // recycles alpha's slot
/// assert_eq!(c, a);
/// assert_eq!(slab.len(), 2);
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<SlabEntry<T>>,
    /// Head of the vacant-slot free list (`usize::MAX` = none).
    free_head: usize,
    len: usize,
}

#[derive(Debug, Clone)]
enum SlabEntry<T> {
    Occupied(T),
    /// Vacant slot holding the next free-list index (`usize::MAX` ends
    /// the list).
    Vacant(usize),
}

const FREE_END: usize = usize::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: Vec::new(), free_head: FREE_END, len: 0 }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slots are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its slot key. Recycles the most recently
    /// freed slot when one exists.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if self.free_head == FREE_END {
            self.entries.push(SlabEntry::Occupied(value));
            return self.entries.len() - 1;
        }
        let key = self.free_head;
        match std::mem::replace(&mut self.entries[key], SlabEntry::Occupied(value)) {
            SlabEntry::Vacant(next) => self.free_head = next,
            SlabEntry::Occupied(_) => unreachable!("free list points at an occupied slot"),
        }
        key
    }

    /// Removes and returns the value in `key`'s slot.
    ///
    /// # Panics
    ///
    /// Panics when `key` is not an occupied slot — slab keys are internal
    /// handles, so a dangling one is a caller bug, not recoverable state.
    pub fn remove(&mut self, key: usize) -> T {
        match std::mem::replace(&mut self.entries[key], SlabEntry::Vacant(self.free_head)) {
            SlabEntry::Occupied(value) => {
                self.free_head = key;
                self.len -= 1;
                value
            }
            SlabEntry::Vacant(next) => {
                self.entries[key] = SlabEntry::Vacant(next);
                panic!("slab slot {key} is vacant")
            }
        }
    }

    /// The value in `key`'s slot, if occupied.
    #[must_use]
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.entries.get(key) {
            Some(SlabEntry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value in `key`'s slot, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.entries.get_mut(key) {
            Some(SlabEntry::Occupied(value)) => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ringbuf_wraps_and_grows() {
        let mut rb: RingBuf<u32> = RingBuf::with_capacity(2);
        for round in 0..10 {
            rb.push_back(round);
            rb.push_back(round + 100);
            assert_eq!(rb.pop_front(), Some(round));
            assert_eq!(rb.pop_front(), Some(round + 100));
        }
        for i in 0..9 {
            rb.push_back(i);
        }
        assert_eq!(rb.len(), 9);
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn ringbuf_push_front_and_remove_match_vecdeque() {
        use std::collections::VecDeque;
        let mut rb: RingBuf<u32> = RingBuf::new();
        let mut vd: VecDeque<u32> = VecDeque::new();
        for i in 0..8 {
            rb.push_back(i);
            vd.push_back(i);
        }
        rb.push_front(99);
        vd.push_front(99);
        assert_eq!(rb.remove(4), vd.remove(4));
        assert_eq!(rb.remove(0), vd.remove(0));
        assert_eq!(rb.remove(100), None);
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), Vec::from(vd.clone()));
        rb.clear();
        assert!(rb.is_empty() && rb.front().is_none());
    }

    #[test]
    fn slab_recycles_lifo() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(slab.remove(b), 2);
        assert_eq!(slab.remove(a), 1);
        assert_eq!(slab.insert(4), a, "last freed slot is reused first");
        assert_eq!(slab.insert(5), b);
        assert_eq!(slab.insert(6), 3);
        assert_eq!(slab.len(), 4);
        assert_eq!(slab.get(c), Some(&3));
        assert_eq!(slab.get_mut(a).map(|v| std::mem::replace(v, 7)), Some(4));
        assert_eq!(slab.get(a), Some(&7));
        assert_eq!(slab.get(1000), None);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn slab_remove_of_vacant_slot_panics() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }
}
