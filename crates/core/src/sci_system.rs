//! The timed SCI linked-list-directory ring simulator.
//!
//! The paper accounts for an SCI-like linked-list directory analytically
//! (Table 1); this backend makes it a runnable system: the same processors
//! and workloads as the other simulators, attached to a slotted ring whose
//! coherence state lives in per-block distributed sharing lists served at
//! each block's home node.
//!
//! Protocol truth is [`SciEngine`] — every home decision dispatches through
//! the guarded rule set `ringsim_proto::guarded::SCI_RULES`, the same table
//! the `ringsim-check` model checker exhausts. The timing model on top:
//!
//! * the home serialises transactions per block (FIFO): a request is served
//!   no earlier than the completion of the block's previous transaction,
//! * a transaction's ring time is `traversals × revolution`, where
//!   `traversals` is the engine's closed-path count over the nodes the
//!   messages visit (requester → home → head/list walk) and `revolution`
//!   is one full ring rotation at the configured clock,
//! * every served transaction pays one directory/memory access
//!   (`mem_latency`); a dirty head supplying data adds `supply_latency`.
//!
//! Like the bus simulator, list and cache mutations are applied atomically
//! at the serialisation point while data delivery and processor wake-up
//! keep their latencies; the retire-time sanitizer re-checks SWMR on every
//! completed transaction.

use ringsim_cache::{AccessClass, LineState};
use ringsim_obs::{LatencyHistogram, Obs, ObsConfig, Recorder};
use ringsim_proto::sci::SciEngine;
use ringsim_proto::table1::TraversalReport;
use ringsim_ring::RingConfig;
use ringsim_trace::{NodeStream, Workload, BLOCK_BYTES};
use ringsim_types::stats::RunningMean;
use ringsim_types::{
    AccessKind, BlockAddr, CoherenceEvents, ConfigError, MemRef, NodeId, Region, Time,
};

use crate::collections::FnvMap;
use crate::report::{ClassLatencies, NodeMeasure, SimReport};
use crate::sanitize;

/// Windowed-accumulator slot for home-queue wait (see [`Obs::acc_add`]).
const ACC_HOME_WAIT: usize = 0;

/// Quantum of lookahead a processor may run ahead of the global event
/// clock while it keeps hitting in its cache (same bound as the bus
/// simulator).
const PROC_QUANTUM: Time = Time::from_ns(200);

/// Configuration of an SCI linked-list-directory ring system.
///
/// # Examples
///
/// ```
/// use ringsim_core::SciSystemConfig;
/// use ringsim_types::Time;
///
/// let cfg = SciSystemConfig::sci_500mhz(16).with_mips(100);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.proc_cycle, Time::from_ns(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SciSystemConfig {
    /// Ring geometry and clock.
    pub ring: RingConfig,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// Directory/memory access time at the home (140 ns in the paper).
    pub mem_latency: Time,
    /// Extra supply time when a dirty head provides the data.
    pub supply_latency: Time,
}

impl SciSystemConfig {
    /// The paper's 500 MHz ring carrying the SCI directory, with 50 MIPS
    /// processors.
    #[must_use]
    pub fn sci_500mhz(nodes: usize) -> Self {
        Self {
            ring: RingConfig::standard_500mhz(nodes),
            proc_cycle: Time::from_ns(20),
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
        }
    }

    /// The 250 MHz variant.
    #[must_use]
    pub fn sci_250mhz(nodes: usize) -> Self {
        Self { ring: RingConfig::standard_250mhz(nodes), ..Self::sci_500mhz(nodes) }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.ring.nodes
    }

    /// Builder-style processor cycle override.
    #[must_use]
    pub fn with_proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.proc_cycle = proc_cycle;
        self
    }

    /// Builder-style MIPS override.
    ///
    /// # Panics
    ///
    /// Panics if `mips` is zero.
    #[must_use]
    pub fn with_mips(self, mips: u64) -> Self {
        assert!(mips > 0, "mips must be positive");
        self.with_proc_cycle(Time::from_ps(1_000_000 / mips))
    }

    /// Validates all parts.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.ring.validate()?;
        if self.ring.nodes > 64 {
            return Err(ConfigError::new("ring.nodes", "at most 64 nodes supported"));
        }
        if self.proc_cycle.is_zero() || self.mem_latency.is_zero() || self.supply_latency.is_zero()
        {
            return Err(ConfigError::new("timing", "all latencies must be non-zero"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    block: BlockAddr,
    class: AccessClass,
    start: Time,
    served: Served,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    Local,
    CleanRemote,
    Dirty,
}

#[derive(Debug)]
struct SciNode {
    stream: NodeStream,
    ready_at: Time,
    instr_carry: f64,
    refs_issued: u64,
    warmup_refs: u64,
    total_refs: u64,
    measuring: bool,
    measure_start: Time,
    busy: Time,
    finish_at: Option<Time>,
    txn: Option<Txn>,
    misses: u64,
    miss_lat: LatencyHistogram,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Resume the processor's issue loop.
    ProcReady { node: usize },
    /// The blocked processor's transaction finishes.
    Complete { node: usize },
}

/// The timed SCI ring system simulator.
///
/// # Examples
///
/// ```
/// use ringsim_core::{SciRingSystem, SciSystemConfig};
/// use ringsim_trace::{Workload, WorkloadSpec};
///
/// let cfg = SciSystemConfig::sci_500mhz(4);
/// let workload = Workload::new(WorkloadSpec::demo(4).with_refs(2_000)).unwrap();
/// let report = SciRingSystem::new(cfg, workload).unwrap().run();
/// assert!(report.proc_util > 0.0);
/// ```
pub struct SciRingSystem {
    cfg: SciSystemConfig,
    /// Protocol truth: caches + sharing lists + traversal accounting,
    /// every home decision dispatched through the SCI rule set.
    engine: SciEngine<Box<dyn Fn(BlockAddr) -> NodeId>>,
    nodes: Vec<SciNode>,
    /// Per-block home-queue serialisation: earliest time the home will
    /// admit the block's next transaction. Private blocks are skipped
    /// (their single user serialises itself).
    block_free: FnvMap<u64, Time>,
    /// One full ring rotation at the configured clock.
    revolution: Time,
    measuring_nodes: usize,
    queue: crate::EventQueue<Event>,
    now: Time,
    /// Total in-flight ring time charged so far (for utilisation).
    travel: Time,
    /// `(travel, now)` at the instant every node entered its measured
    /// window.
    snapshot: Option<(Time, Time)>,
    miss_lat: RunningMean,
    miss_hist: LatencyHistogram,
    upg_lat: RunningMean,
    class_lat: ClassLatencies,
    events: CoherenceEvents,
    // Telemetry (no-op unless `attach_obs` was called).
    obs: Obs,
    obs_sci_tl: usize,
    obs_window: (Time, Time),
}

impl SciRingSystem {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid or the
    /// workload's processor count does not match the ring's node count.
    pub fn new(cfg: SciSystemConfig, workload: Workload) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.procs() != cfg.nodes() {
            return Err(ConfigError::new(
                "workload.procs",
                format!("workload has {} processors, ring has {}", workload.procs(), cfg.nodes()),
            ));
        }
        let spec = workload.spec().clone();
        let space = workload.space();
        let layout = cfg.ring.layout()?;
        let revolution = cfg.ring.clock_period * layout.round_trip_cycles() as u64;
        let home: Box<dyn Fn(BlockAddr) -> NodeId> = Box::new(move |b| space.home_of_block(b));
        let engine = SciEngine::new(layout, home)?;
        let nodes = workload
            .into_streams()
            .into_iter()
            .map(|stream| SciNode {
                stream,
                ready_at: Time::ZERO,
                instr_carry: 0.0,
                refs_issued: 0,
                warmup_refs: spec.warmup_refs_per_proc,
                total_refs: spec.warmup_refs_per_proc + spec.data_refs_per_proc,
                measuring: false,
                measure_start: Time::ZERO,
                busy: Time::ZERO,
                finish_at: None,
                txn: None,
                misses: 0,
                miss_lat: LatencyHistogram::new(),
            })
            .collect();
        Ok(Self {
            cfg,
            engine,
            nodes,
            block_free: FnvMap::default(),
            revolution,
            measuring_nodes: 0,
            queue: crate::EventQueue::new(),
            now: Time::ZERO,
            travel: Time::ZERO,
            snapshot: None,
            miss_lat: RunningMean::default(),
            miss_hist: LatencyHistogram::new(),
            upg_lat: RunningMean::default(),
            class_lat: ClassLatencies::default(),
            events: CoherenceEvents::default(),
            obs: Obs::disabled(),
            obs_sci_tl: usize::MAX,
            obs_window: (Time::ZERO, Time::ZERO),
        })
    }

    /// Enables telemetry for this run: per-transaction trace events plus a
    /// `"sci"` gauge timeline (ring travel fraction over the sampling
    /// window, outstanding transactions, mean home-queue wait). Strictly
    /// observational.
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let mut obs = Obs::enabled(cfg, self.nodes.len());
        self.obs_sci_tl = obs.add_timeline("sci", &["travel", "outstanding", "home_wait_ns"]);
        self.obs = obs;
    }

    /// Takes the telemetry recorder after a run; `None` unless
    /// [`SciRingSystem::attach_obs`] was called.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        std::mem::take(&mut self.obs).into_recorder()
    }

    /// Replays `refs` through the protocol engine directly, in the order
    /// given, without any timing — the untimed reference path. Returns the
    /// accumulated traversal distributions, which match
    /// [`ringsim_proto::table1::LinkedListAccountant`] on the same stream
    /// (a test pins that equivalence). Intended for freshly built systems;
    /// do not mix with [`SciRingSystem::run`].
    pub fn replay_reference(&mut self, refs: impl IntoIterator<Item = MemRef>) -> TraversalReport {
        for r in refs {
            self.engine.process(r, None);
        }
        self.engine.report()
    }

    /// The traversal distributions the protocol engine accumulated so far
    /// (both timed runs and [`SciRingSystem::replay_reference`] feed it).
    #[must_use]
    pub fn traversal_report(&self) -> TraversalReport {
        self.engine.report()
    }

    /// Coherence state of `block` in node `i`'s cache (inspection hook).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cache_state(&self, i: usize, block: BlockAddr) -> LineState {
        self.engine.state_of(NodeId::new(i), block)
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        self.queue.schedule(at, ev);
    }

    /// Runs to completion.
    pub fn run(&mut self) -> SimReport {
        for i in 0..self.nodes.len() {
            self.schedule(Time::ZERO, Event::ProcReady { node: i });
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            match ev {
                Event::ProcReady { node } => self.step_processor(node),
                Event::Complete { node } => self.complete(node),
            }
            if self.snapshot.is_none() && self.measuring_nodes == self.nodes.len() {
                self.snapshot = Some((self.travel, self.now));
            }
            if self.obs.sample_due(self.now) {
                self.sample_gauges();
            }
        }
        self.build_report()
    }

    /// Pushes one row onto the `"sci"` gauge timeline: the travel fraction
    /// is the delta over the window since the previous sample.
    fn sample_gauges(&mut self) {
        let (prev, since) = self.obs_window;
        let window = self.now.saturating_sub(since);
        let frac = if window.is_zero() {
            0.0
        } else {
            (self.travel.saturating_sub(prev).as_ps() as f64 / window.as_ps() as f64).min(1.0)
        };
        let outstanding = self.nodes.iter().filter(|n| n.txn.is_some()).count() as f64;
        let wait = self.obs.acc_take_mean(ACC_HOME_WAIT);
        self.obs.sample(self.obs_sci_tl, self.now, vec![frac, outstanding, wait]);
        self.obs_window = (self.travel, self.now);
    }

    fn step_processor(&mut self, i: usize) {
        let horizon = self.now + PROC_QUANTUM;
        loop {
            let node = &mut self.nodes[i];
            if node.finish_at.is_some() || node.txn.is_some() {
                return;
            }
            if node.ready_at > horizon {
                let at = node.ready_at;
                self.schedule(at, Event::ProcReady { node: i });
                return;
            }
            if node.refs_issued == node.total_refs {
                node.finish_at = Some(node.ready_at);
                return;
            }
            let icycles = node.instr_carry + node.stream.instr_per_data();
            let whole = icycles.floor();
            node.instr_carry = icycles - whole;
            let cost = self.cfg.proc_cycle * (1 + whole as u64);
            if node.measuring {
                node.busy += cost;
            }
            node.ready_at += cost;
            let r = node.stream.next_ref();
            node.refs_issued += 1;
            if !node.measuring && node.refs_issued > node.warmup_refs {
                node.measuring = true;
                self.measuring_nodes += 1;
                node.measure_start = node.ready_at;
                node.busy = cost;
            }
            let block = r.addr.block(BLOCK_BYTES);
            if node.measuring {
                match (r.region, r.kind) {
                    (Region::Private, AccessKind::Read) => self.events.private_reads += 1,
                    (Region::Private, AccessKind::Write) => self.events.private_writes += 1,
                    (Region::Shared, AccessKind::Read) => self.events.shared_reads += 1,
                    (Region::Shared, AccessKind::Write) => self.events.shared_writes += 1,
                }
            }
            // The serialisation point: the home admits the request and the
            // engine applies list + cache mutations atomically; only the
            // latencies play out in event time.
            let step = self.engine.process(r, None);
            if step.class == AccessClass::Hit {
                continue;
            }
            self.issue_txn(i, r, block, step);
            return;
        }
    }

    fn issue_txn(
        &mut self,
        i: usize,
        r: MemRef,
        block: BlockAddr,
        step: ringsim_proto::sci::SciStep,
    ) {
        let me = NodeId::new(i);
        let home = self.engine.home(block);
        let local = home == me;
        let measuring = self.nodes[i].measuring;
        let start = self.nodes[i].ready_at;
        let is_upgrade = step.class == AccessClass::Upgrade;

        self.obs.txn_begin(i, if is_upgrade { "upgrade" } else { "miss" }, block.raw(), start);

        // Home-queue admission: shared blocks serialise per block.
        let serve_at = if r.region == Region::Shared {
            let free = self.block_free.get(&block.raw()).copied().unwrap_or(Time::ZERO);
            start.max(free)
        } else {
            start
        };
        self.obs.acc_add(ACC_HOME_WAIT, serve_at.saturating_sub(start).as_ns_f64());
        self.obs.txn_mark(i, "admit", serve_at);

        // Ring travel + the home's directory/memory access; a dirty head
        // supplying the data adds the cache-supply time.
        let travel = self.revolution * step.traversals as u64;
        let mut completion = serve_at + travel + self.cfg.mem_latency;
        if step.dirty_supply {
            completion += self.cfg.supply_latency;
        }
        self.travel += travel;
        if r.region == Region::Shared {
            self.block_free.insert(block.raw(), completion);
        }

        // Event classification, mirroring the other backends' buckets.
        if measuring {
            if r.region == Region::Private {
                if is_upgrade {
                    self.events.upgrade_nosharers_local += 1;
                } else {
                    self.events.private_misses += 1;
                }
            } else if is_upgrade {
                match (step.invalidated > 0, local) {
                    (false, true) => self.events.upgrade_nosharers_local += 1,
                    (false, false) => self.events.upgrade_nosharers_remote += 1,
                    (true, true) => self.events.upgrade_sharers_local += 1,
                    (true, false) => self.events.upgrade_sharers_remote += 1,
                }
                self.events.invalidated_copies += step.invalidated as u64;
            } else if r.kind == AccessKind::Read {
                if step.dirty_supply {
                    if step.traversals >= 2 {
                        self.events.read_dirty_2 += 1;
                    } else {
                        self.events.read_dirty_1 += 1;
                    }
                } else if local {
                    self.events.read_clean_local += 1;
                } else {
                    self.events.read_clean_remote += 1;
                }
            } else {
                if step.dirty_supply {
                    if step.traversals >= 2 {
                        self.events.write_dirty_2 += 1;
                    } else {
                        self.events.write_dirty_1 += 1;
                    }
                } else {
                    match (step.invalidated > 0, local) {
                        (false, true) => self.events.write_nosharers_local += 1,
                        (false, false) => self.events.write_nosharers_remote += 1,
                        (true, true) => self.events.write_sharers_local += 1,
                        (true, false) => self.events.write_sharers_remote += 1,
                    }
                }
                self.events.invalidated_copies += step.invalidated as u64;
            }
        }

        let served = if step.dirty_supply {
            Served::Dirty
        } else if local {
            Served::Local
        } else {
            Served::CleanRemote
        };
        self.nodes[i].txn = Some(Txn { block, class: step.class, start, served });
        self.schedule(completion, Event::Complete { node: i });
    }

    fn complete(&mut self, i: usize) {
        let t = self.nodes[i].txn.take().expect("completing absent txn");
        if sanitize::sanitize_enabled() {
            // List and cache mutations are atomic at the serialisation
            // point, so SWMR must hold outright at every retire.
            let states: Vec<LineState> = (0..self.nodes.len())
                .map(|j| self.engine.state_of(NodeId::new(j), t.block))
                .collect();
            sanitize::check_swmr(t.block, &states, &vec![false; states.len()]);
        }
        let node = &mut self.nodes[i];
        node.ready_at = node.ready_at.max(self.now);
        let latency = self.now.saturating_sub(t.start);
        if node.measuring {
            if t.class == AccessClass::Upgrade {
                self.upg_lat.push_time_ns(latency);
                self.class_lat.upgrade.record_time(latency);
                self.obs.txn_end(i, "upgrade", "upgrade", self.now);
            } else {
                self.miss_lat.push_time_ns(latency);
                self.miss_hist.record_time(latency);
                node.misses += 1;
                node.miss_lat.record_time(latency);
                let class = match t.served {
                    Served::Local => {
                        self.class_lat.local.record_time(latency);
                        "local"
                    }
                    Served::Dirty => {
                        self.class_lat.dirty.record_time(latency);
                        "dirty"
                    }
                    Served::CleanRemote => {
                        self.class_lat.clean_remote.record_time(latency);
                        "clean_remote"
                    }
                };
                self.obs.txn_end(i, "miss", class, self.now);
            }
        } else {
            self.obs.txn_abandon(i);
        }
        self.step_processor(i);
    }

    fn build_report(&mut self) -> SimReport {
        let (per_node, proc_util, sim_end) =
            crate::report::summarize_nodes(self.nodes.iter().map(|n| NodeMeasure {
                finished_at: n.finish_at.expect("all nodes finished"),
                measure_start: n.measure_start,
                busy: n.busy,
                misses: n.misses,
                miss_lat: &n.miss_lat,
            }));
        let (base_travel, start) = self.snapshot.unwrap_or((Time::ZERO, Time::ZERO));
        let window = sim_end.saturating_sub(start);
        let travel = self.travel.saturating_sub(base_travel);
        let ring_util = if window.is_zero() {
            0.0
        } else {
            (travel.as_ps() as f64 / window.as_ps() as f64).min(1.0)
        };
        let report = SimReport {
            protocol: "sci-linked-list".into(),
            nodes: self.cfg.nodes(),
            proc_cycle: self.cfg.proc_cycle,
            sim_end,
            proc_util,
            ring_util,
            // SCI messages are point-to-point packets on one ring; the
            // request/data split of the slotted-ring backends does not
            // apply, so all travel is reported as probe traffic.
            probe_util: ring_util,
            block_util: 0.0,
            miss_latency: self.miss_lat,
            miss_histogram: self.miss_hist.clone(),
            upgrade_latency: self.upg_lat,
            class_latencies: self.class_lat.clone(),
            events: self.events,
            retries: 0,
            per_node,
        };
        if ringsim_obs::global_metrics_enabled() {
            ringsim_obs::global_record(&report.metrics_summary());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_trace::WorkloadSpec;

    fn run(nodes: usize, refs: u64, mips: u64) -> SimReport {
        let cfg = SciSystemConfig::sci_500mhz(nodes).with_mips(mips);
        let w = Workload::new(WorkloadSpec::demo(nodes).with_refs(refs)).unwrap();
        SciRingSystem::new(cfg, w).unwrap().run()
    }

    #[test]
    fn runs_to_completion() {
        let r = run(4, 3_000, 50);
        assert_eq!(r.protocol, "sci-linked-list");
        assert!(r.proc_util > 0.0 && r.proc_util <= 1.0);
        assert!(r.miss_latency.count() > 0);
        assert_eq!(r.events.data_refs(), 4 * 3_000);
    }

    #[test]
    fn miss_latency_has_memory_floor() {
        let r = run(4, 2_000, 50);
        assert!(r.miss_latency.min().unwrap_or(0.0) >= 139.0);
    }

    #[test]
    fn slower_ring_means_longer_misses() {
        let w = || Workload::new(WorkloadSpec::demo(8).with_refs(2_500)).unwrap();
        let fast = SciRingSystem::new(SciSystemConfig::sci_500mhz(8), w()).unwrap().run();
        let slow = SciRingSystem::new(SciSystemConfig::sci_250mhz(8), w()).unwrap().run();
        assert!(
            slow.miss_latency.mean() > fast.miss_latency.mean(),
            "250 MHz {} vs 500 MHz {}",
            slow.miss_latency.mean(),
            fast.miss_latency.mean()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(4, 2_000, 100);
        let b = run(4, 2_000, 100);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn rejects_mismatched_workload() {
        let cfg = SciSystemConfig::sci_500mhz(8);
        let w = Workload::new(WorkloadSpec::demo(4)).unwrap();
        assert!(SciRingSystem::new(cfg, w).is_err());
    }
}
