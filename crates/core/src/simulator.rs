//! The backend-neutral [`Simulator`] trait and its [`SimKind`] registry —
//! the one dispatch behind every CLI and experiment run.
//!
//! The paper's central method is running the *same* workloads through
//! interchangeable interconnects and comparing curves. Before this module,
//! each backend ([`RingSystem`], [`BusSystem`], [`HierNetSim`]) hand-rolled
//! construction, obs attachment and report assembly, and every cross-cutting
//! feature (sanitizer, telemetry, metrics sinks) had to be threaded through
//! three copies. Now a backend is: implement [`Simulator`], register a
//! [`SimKind`], done — `sim --network {ring,bus,hier}` is one dispatch, and
//! so is the experiment suite's per-point execution.
//!
//! A run is a single call: [`Simulator::run`] takes [`RunOptions`] (the
//! telemetry request) and returns a [`RunOutcome`] bundling the
//! [`SimReport`] with the optional recorder. The older three-call
//! `attach_obs` / `run` / `take_obs` dance survives only as inherent
//! methods on the concrete backends (useful in white-box tests) and as the
//! deprecated [`run_sim`] shim.

use std::fmt;
use std::str::FromStr;

use ringsim_obs::{ObsConfig, Recorder};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingTopology;
use ringsim_trace::Workload;
use ringsim_types::{ConfigError, Time};

use crate::bus_system::{BusProtocol, BusSystem, BusSystemConfig};
use crate::config::SystemConfig;
use crate::hier_net::{HierNetConfig, HierNetSim};
use crate::report::SimReport;
use crate::ring_system::RingSystem;
use crate::sci_system::{SciRingSystem, SciSystemConfig};

/// What a [`Simulator::run`] call should observe, beyond the report every
/// run produces.
///
/// `RunOptions::default()` is a plain run: no recorder is returned (though
/// gauge timelines still reach the process-wide metrics sink when that is
/// enabled — see [`Simulator::run`]).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Telemetry to record during the run: per-transaction trace events
    /// plus gauge timelines. Strictly observational — attaching obs must
    /// not change any simulation result. `Some` makes the outcome carry a
    /// [`Recorder`].
    pub obs: Option<ObsConfig>,
}

impl RunOptions {
    /// Options for a plain run (no recorder returned).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests telemetry: the outcome's `obs` will hold the recorder.
    #[must_use]
    pub fn with_obs(mut self, cfg: ObsConfig) -> Self {
        self.obs = Some(cfg);
        self
    }
}

/// Everything one simulator run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The aggregated simulation report.
    pub report: SimReport,
    /// The telemetry recorder; `Some` exactly when the run was given
    /// [`RunOptions`] with `obs` set.
    pub obs: Option<Recorder>,
}

/// A timed system simulator: configure at construction, then run to
/// completion with a single [`Simulator::run`] call.
///
/// The contract:
///
/// 1. construction validates the configuration (`SimKind::build`),
/// 2. [`Simulator::run`] runs to completion and is not required to be
///    re-runnable; it returns the report plus — when `opts.obs` was set —
///    the telemetry recorder,
/// 3. when `opts.obs` is `None` but the process-wide metrics sink is on
///    (`experiments --metrics`), the backend still records a small gauge
///    timeline set and folds it into the global sink, so every backend's
///    timelines reach the metrics document without per-caller wiring.
pub trait Simulator {
    /// Runs the simulation to completion and collects the outcome.
    fn run(&mut self, opts: &RunOptions) -> RunOutcome;
}

/// The obs configuration a run should attach: the explicit request wins;
/// otherwise the global metrics sink implies a minimal-trace recorder.
fn obs_to_attach(opts: &RunOptions) -> Option<ObsConfig> {
    if opts.obs.is_some() {
        return opts.obs;
    }
    ringsim_obs::global_metrics_enabled()
        .then(|| ObsConfig { trace_capacity: 64, ..ObsConfig::default() })
}

/// Packages a finished run: the recorder is surfaced only for an explicit
/// obs request; an implicitly attached one is drained into the global
/// metrics sink.
fn seal_outcome(opts: &RunOptions, report: SimReport, recorder: Option<Recorder>) -> RunOutcome {
    if opts.obs.is_some() {
        return RunOutcome { report, obs: recorder };
    }
    if let Some(rec) = recorder {
        for tl in rec.timelines {
            ringsim_obs::global_record_timeline(tl);
        }
    }
    RunOutcome { report, obs: None }
}

impl Simulator for RingSystem {
    fn run(&mut self, opts: &RunOptions) -> RunOutcome {
        if let Some(cfg) = obs_to_attach(opts) {
            RingSystem::attach_obs(self, cfg);
        }
        let report = RingSystem::run(self);
        seal_outcome(opts, report, RingSystem::take_obs(self))
    }
}

impl Simulator for BusSystem {
    fn run(&mut self, opts: &RunOptions) -> RunOutcome {
        if let Some(cfg) = obs_to_attach(opts) {
            BusSystem::attach_obs(self, cfg);
        }
        let report = BusSystem::run(self);
        seal_outcome(opts, report, BusSystem::take_obs(self))
    }
}

impl Simulator for SciRingSystem {
    fn run(&mut self, opts: &RunOptions) -> RunOutcome {
        if let Some(cfg) = obs_to_attach(opts) {
            SciRingSystem::attach_obs(self, cfg);
        }
        let report = SciRingSystem::run(self);
        seal_outcome(opts, report, SciRingSystem::take_obs(self))
    }
}

impl Simulator for HierNetSim {
    fn run(&mut self, opts: &RunOptions) -> RunOutcome {
        if let Some(cfg) = obs_to_attach(opts) {
            HierNetSim::attach_obs(self, cfg);
        }
        let rep = HierNetSim::run(self);
        let report = self.sim_report(&rep);
        seal_outcome(opts, report, HierNetSim::take_obs(self))
    }
}

/// Ring-tree depth for the hierarchy backends, the sweepable topology
/// axis: a flat ring, the classic two-level hierarchy, or a three-level
/// tree of ring groups — all balanced factorisations of the processor
/// count (see [`RingTopology::balanced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierTopology {
    /// One flat slotted ring (no bridges).
    Flat,
    /// Leaf rings under one global ring (the classic hierarchy).
    TwoLevel,
    /// Leaf rings under group rings under one root ring.
    ThreeLevel,
}

impl HierTopology {
    /// Every topology, in CLI listing order.
    pub const ALL: [HierTopology; 3] =
        [HierTopology::Flat, HierTopology::TwoLevel, HierTopology::ThreeLevel];

    /// Canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HierTopology::Flat => "flat",
            HierTopology::TwoLevel => "2level",
            HierTopology::ThreeLevel => "3level",
        }
    }

    /// Number of ring-tree levels.
    #[must_use]
    pub fn levels(self) -> usize {
        match self {
            HierTopology::Flat => 1,
            HierTopology::TwoLevel => 2,
            HierTopology::ThreeLevel => 3,
        }
    }
}

impl fmt::Display for HierTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accepts the canonical names `flat`, `2level` and `3level` (plus the
/// spelled-out `two-level`/`three-level`).
impl FromStr for HierTopology {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(HierTopology::Flat),
            "2level" | "two-level" => Ok(HierTopology::TwoLevel),
            "3level" | "three-level" => Ok(HierTopology::ThreeLevel),
            _ => Err(ConfigError::new(
                "topology",
                format!("unknown topology `{s}` (known: flat, 2level, 3level)"),
            )),
        }
    }
}

/// The backend-neutral simulation request a [`SimKind`] builds from: the
/// workload to run plus the knobs every backend understands.
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// Coherence protocol for the slotted-ring backends. The other kinds
    /// carry their protocol in the kind itself (`bus50-mesi`, `sci500`, …)
    /// and ignore this field; the hierarchy backend abstracts the protocol
    /// level away.
    pub protocol: ProtocolKind,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// Ring-tree depth override for the hierarchy backends (`None` keeps
    /// the kind's default: two levels for `hier`/`hier-deflect`, three for
    /// `hier3`). Ignored by the non-hierarchy kinds.
    pub topology: Option<HierTopology>,
    /// Bridge buffer depth override for the hierarchy backends (`None`
    /// keeps the kind's default: unbounded classic queues, except
    /// `hier-deflect` which defaults to 2-entry deflecting bridges).
    /// Ignored by the non-hierarchy kinds.
    pub bridge_buffer: Option<usize>,
    /// The workload to drive through the interconnect.
    pub workload: Workload,
}

impl SimSpec {
    /// A spec with the paper's defaults: snooping at 50 MIPS (20 ns).
    #[must_use]
    pub fn new(workload: Workload) -> Self {
        Self {
            protocol: ProtocolKind::Snooping,
            proc_cycle: Time::from_ns(20),
            topology: None,
            bridge_buffer: None,
            workload,
        }
    }

    /// Sets the coherence protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the processor cycle time.
    #[must_use]
    pub fn with_proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.proc_cycle = proc_cycle;
        self
    }

    /// Overrides the hierarchy backends' ring-tree depth.
    #[must_use]
    pub fn with_topology(mut self, topology: HierTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides the hierarchy backends' bridge buffer depth (switches
    /// `hier`/`hier3` into deflection mode; 0 = bufferless latch).
    #[must_use]
    pub fn with_bridge_buffer(mut self, depth: usize) -> Self {
        self.bridge_buffer = Some(depth);
        self
    }
}

/// Registry of the interconnect backends, mirroring the sweep crate's
/// experiment registry: every backend the CLIs can name is one variant,
/// buildable from one [`SimSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// 32-bit slotted ring clocked at 500 MHz.
    Ring500,
    /// 32-bit slotted ring clocked at 250 MHz.
    Ring250,
    /// 64-bit split-transaction bus at 50 MHz.
    Bus50,
    /// 64-bit split-transaction bus at 100 MHz.
    Bus100,
    /// 64-bit 50 MHz bus running 4-state MESI (clean-exclusive fills,
    /// silent E→M promotion).
    Bus50Mesi,
    /// 64-bit 50 MHz bus running the Dragon write-update protocol.
    Bus50Dragon,
    /// SCI linked-list-directory ring at 500 MHz.
    Sci500,
    /// SCI linked-list-directory ring at 250 MHz.
    Sci250,
    /// Slotted-ring hierarchy (message-level, KSR1-style bridges;
    /// two-level by default, topology overridable).
    Hier,
    /// Three-level slotted-ring hierarchy (leaf rings under group rings
    /// under one root ring).
    Hier3,
    /// Two-level hierarchy with HiRD-style deflecting bridges (2-entry
    /// buffers by default; losers of bridge arbitration re-circulate).
    HierDeflect,
}

impl SimKind {
    /// Every registered backend, in CLI listing order.
    pub const ALL: [SimKind; 11] = [
        SimKind::Ring500,
        SimKind::Ring250,
        SimKind::Bus50,
        SimKind::Bus100,
        SimKind::Bus50Mesi,
        SimKind::Bus50Dragon,
        SimKind::Sci500,
        SimKind::Sci250,
        SimKind::Hier,
        SimKind::Hier3,
        SimKind::HierDeflect,
    ];

    /// Canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimKind::Ring500 => "ring500",
            SimKind::Ring250 => "ring250",
            SimKind::Bus50 => "bus50",
            SimKind::Bus100 => "bus100",
            SimKind::Bus50Mesi => "bus50-mesi",
            SimKind::Bus50Dragon => "bus50-dragon",
            SimKind::Sci500 => "sci500",
            SimKind::Sci250 => "sci250",
            SimKind::Hier => "hier",
            SimKind::Hier3 => "hier3",
            SimKind::HierDeflect => "hier-deflect",
        }
    }

    /// Whether this kind runs the hierarchy network engine (and therefore
    /// honours [`SimSpec::topology`]/[`SimSpec::bridge_buffer`] and lacks
    /// a reference-level replay trace).
    #[must_use]
    pub fn is_hier(self) -> bool {
        matches!(self, SimKind::Hier | SimKind::Hier3 | SimKind::HierDeflect)
    }

    /// One-line description for `--help`-style listings.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            SimKind::Ring500 => "32-bit slotted ring at 500 MHz",
            SimKind::Ring250 => "32-bit slotted ring at 250 MHz",
            SimKind::Bus50 => "64-bit split-transaction bus at 50 MHz",
            SimKind::Bus100 => "64-bit split-transaction bus at 100 MHz",
            SimKind::Bus50Mesi => "50 MHz bus running 4-state MESI",
            SimKind::Bus50Dragon => "50 MHz bus running Dragon write-update",
            SimKind::Sci500 => "SCI linked-list-directory ring at 500 MHz",
            SimKind::Sci250 => "SCI linked-list-directory ring at 250 MHz",
            SimKind::Hier => "slotted-ring hierarchy (two-level by default)",
            SimKind::Hier3 => "three-level slotted-ring hierarchy",
            SimKind::HierDeflect => "two-level hierarchy with deflecting bridges",
        }
    }

    /// Parses a CLI network name; `ring`, `bus` and `hiernet` are accepted
    /// as aliases for the default variants.
    #[deprecated(note = "use `str::parse::<SimKind>()` for a typed SimKindError")]
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        s.parse().ok()
    }

    /// Builds a ready-to-run simulator for this backend from `spec`.
    ///
    /// The hierarchy backends derive their ring tree from the processor
    /// count (the most balanced factorisation at the requested depth — see
    /// [`RingTopology::balanced`]) and their per-node transaction budget
    /// from the workload's reference budget; [`SimSpec::topology`] and
    /// [`SimSpec::bridge_buffer`] override the per-kind defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid for the
    /// backend (e.g. a prime processor count for `hier`).
    pub fn build(self, spec: &SimSpec) -> Result<Box<dyn Simulator>, ConfigError> {
        let procs = spec.workload.procs();
        Ok(match self {
            SimKind::Ring500 | SimKind::Ring250 => {
                let cfg = match self {
                    SimKind::Ring500 => SystemConfig::ring_500mhz(spec.protocol, procs),
                    _ => SystemConfig::ring_250mhz(spec.protocol, procs),
                }
                .with_proc_cycle(spec.proc_cycle);
                Box::new(RingSystem::new(cfg, spec.workload.clone())?)
            }
            SimKind::Bus50 | SimKind::Bus100 | SimKind::Bus50Mesi | SimKind::Bus50Dragon => {
                let cfg = match self {
                    SimKind::Bus100 => BusSystemConfig::bus_100mhz(procs),
                    _ => BusSystemConfig::bus_50mhz(procs),
                }
                .with_protocol(match self {
                    SimKind::Bus50Mesi => BusProtocol::Mesi,
                    SimKind::Bus50Dragon => BusProtocol::Dragon,
                    _ => BusProtocol::Msi,
                })
                .with_proc_cycle(spec.proc_cycle);
                Box::new(BusSystem::new(cfg, spec.workload.clone())?)
            }
            SimKind::Sci500 | SimKind::Sci250 => {
                let cfg = match self {
                    SimKind::Sci500 => SciSystemConfig::sci_500mhz(procs),
                    _ => SciSystemConfig::sci_250mhz(procs),
                }
                .with_proc_cycle(spec.proc_cycle);
                Box::new(SciRingSystem::new(cfg, spec.workload.clone())?)
            }
            SimKind::Hier | SimKind::Hier3 | SimKind::HierDeflect => {
                let levels = spec
                    .topology
                    .map_or(if self == SimKind::Hier3 { 3 } else { 2 }, HierTopology::levels);
                let topo = RingTopology::balanced(levels, procs)?;
                // The hierarchy workload is closed-loop (think → transact →
                // wait), so map the reference budget onto a transaction
                // budget: one coherence transaction per ~50 references
                // keeps the default budgets comparable across backends.
                let budget = topo.txn_budget(spec.workload.spec().data_refs_per_proc);
                let mut cfg = HierNetConfig::with_topology(topo);
                cfg.txns_per_node = budget;
                cfg.bridge_buffer = spec.bridge_buffer.or(if self == SimKind::HierDeflect {
                    Some(2)
                } else {
                    None
                });
                Box::new(HierNetSim::new(cfg)?)
            }
        })
    }
}

/// Why a network name failed to resolve to a [`SimKind`].
///
/// Produced by the [`FromStr`] impl; CLIs and the experiment service
/// surface the [`fmt::Display`] rendering directly (it names the valid
/// spellings), and can dispatch on the variant for structured responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimKindError {
    /// The name matches no registered backend and no documented alias.
    Unknown {
        /// The offending input.
        name: String,
    },
    /// The name is a strict prefix of several backend names (e.g. `bu`),
    /// so resolving it would silently guess.
    Ambiguous {
        /// The offending input.
        name: String,
        /// The backend names it could mean, in registry order.
        candidates: Vec<&'static str>,
    },
}

impl SimKindError {
    /// The offending input.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            SimKindError::Unknown { name } | SimKindError::Ambiguous { name, .. } => name,
        }
    }

    /// Comma-separated canonical names, for error texts and listings.
    #[must_use]
    pub fn known_names() -> String {
        let names: Vec<&str> = SimKind::ALL.iter().map(|k| k.name()).collect();
        names.join(", ")
    }
}

impl fmt::Display for SimKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimKindError::Unknown { name } => write!(
                f,
                "unknown network `{name}` (known: {}; aliases: ring, bus, mesi, dragon, sci, \
                 hiernet)",
                SimKindError::known_names()
            ),
            SimKindError::Ambiguous { name, candidates } => {
                write!(f, "ambiguous network `{name}`: could be {}", candidates.join(" or "))
            }
        }
    }
}

impl std::error::Error for SimKindError {}

/// Typed network-name resolution: canonical names plus the documented
/// aliases `ring` (→ `ring500`), `bus` (→ `bus100`), `sci` (→ `sci500`)
/// and `hiernet` (→ `hier`). Other prefixes are rejected — with
/// [`SimKindError::Ambiguous`] when several backends match, so callers can
/// suggest the candidates instead of guessing.
impl FromStr for SimKind {
    type Err = SimKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ring500" | "ring" => Ok(SimKind::Ring500),
            "ring250" => Ok(SimKind::Ring250),
            "bus50" => Ok(SimKind::Bus50),
            "bus100" | "bus" => Ok(SimKind::Bus100),
            "bus50-mesi" | "mesi" => Ok(SimKind::Bus50Mesi),
            "bus50-dragon" | "dragon" => Ok(SimKind::Bus50Dragon),
            "sci500" | "sci" => Ok(SimKind::Sci500),
            "sci250" => Ok(SimKind::Sci250),
            "hier" | "hiernet" => Ok(SimKind::Hier),
            "hier3" => Ok(SimKind::Hier3),
            "hier-deflect" => Ok(SimKind::HierDeflect),
            _ => {
                let candidates: Vec<&'static str> = SimKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .filter(|n| !s.is_empty() && n.starts_with(s))
                    .collect();
                if candidates.len() >= 2 {
                    Err(SimKindError::Ambiguous { name: s.to_owned(), candidates })
                } else {
                    Err(SimKindError::Unknown { name: s.to_owned() })
                }
            }
        }
    }
}

/// Tuple-style shim over [`Simulator::run`], kept for callers written
/// against the pre-`RunOptions` lifecycle. Identical semantics: an
/// explicit `obs` request returns the recorder, otherwise gauge timelines
/// flow to the global metrics sink when that is enabled.
#[deprecated(note = "call Simulator::run(&RunOptions) and use the RunOutcome fields")]
pub fn run_sim(sim: &mut dyn Simulator, obs: Option<ObsConfig>) -> (SimReport, Option<Recorder>) {
    let opts = RunOptions { obs };
    let outcome = sim.run(&opts);
    (outcome.report, outcome.obs)
}

#[cfg(test)]
mod tests {
    use ringsim_trace::{Workload, WorkloadSpec};

    use super::*;

    fn workload(procs: usize, refs: u64) -> Workload {
        Workload::new(WorkloadSpec::demo(procs).with_refs(refs)).unwrap()
    }

    #[test]
    fn registry_round_trips_names() {
        for kind in SimKind::ALL {
            assert_eq!(kind.name().parse::<SimKind>(), Ok(kind));
            assert!(!kind.description().is_empty());
        }
        assert_eq!("ring".parse::<SimKind>(), Ok(SimKind::Ring500));
        assert_eq!("bus".parse::<SimKind>(), Ok(SimKind::Bus100));
        assert_eq!("mesi".parse::<SimKind>(), Ok(SimKind::Bus50Mesi));
        assert_eq!("dragon".parse::<SimKind>(), Ok(SimKind::Bus50Dragon));
        assert_eq!("sci".parse::<SimKind>(), Ok(SimKind::Sci500));
        assert_eq!("hiernet".parse::<SimKind>(), Ok(SimKind::Hier));
    }

    #[test]
    fn hier_prefixes_stay_unambiguous_in_the_grown_registry() {
        // `hier` is an exact name, so growing the registry with `hier3`
        // and `hier-deflect` must not break it …
        assert_eq!("hier".parse::<SimKind>(), Ok(SimKind::Hier));
        assert_eq!("hier3".parse::<SimKind>(), Ok(SimKind::Hier3));
        assert_eq!("hier-deflect".parse::<SimKind>(), Ok(SimKind::HierDeflect));
        // … while a strict prefix of several hierarchy kinds is reported
        // with all its candidates instead of silently guessing.
        let err = "hie".parse::<SimKind>().unwrap_err();
        assert_eq!(
            err,
            SimKindError::Ambiguous {
                name: "hie".into(),
                candidates: vec!["hier", "hier3", "hier-deflect"],
            }
        );
        // A unique prefix is still not a name.
        assert_eq!("hier-".parse::<SimKind>(), Err(SimKindError::Unknown { name: "hier-".into() }));
    }

    #[test]
    fn topology_names_round_trip() {
        for topo in HierTopology::ALL {
            assert_eq!(topo.name().parse::<HierTopology>(), Ok(topo));
        }
        assert_eq!("two-level".parse::<HierTopology>(), Ok(HierTopology::TwoLevel));
        assert!("4level".parse::<HierTopology>().is_err());
    }

    #[test]
    fn from_str_errors_are_typed() {
        let err = "token-ring".parse::<SimKind>().unwrap_err();
        assert_eq!(err, SimKindError::Unknown { name: "token-ring".into() });
        assert!(
            err.to_string().contains(
                "ring500, ring250, bus50, bus100, bus50-mesi, bus50-dragon, sci500, sci250, \
                 hier, hier3, hier-deflect"
            ),
            "{err}"
        );

        // The ambiguity listing must include the protocol-variant kinds:
        // `bu` could mean any of the four bus backends.
        let err = "bu".parse::<SimKind>().unwrap_err();
        assert_eq!(
            err,
            SimKindError::Ambiguous {
                name: "bu".into(),
                candidates: vec!["bus50", "bus100", "bus50-mesi", "bus50-dragon"],
            }
        );
        assert!(err.to_string().contains("bus50 or bus100 or bus50-mesi or bus50-dragon"), "{err}");

        let err = "s".parse::<SimKind>().unwrap_err();
        assert_eq!(
            err,
            SimKindError::Ambiguous { name: "s".into(), candidates: vec!["sci500", "sci250"] }
        );

        // A unique prefix is still not a name: resolution never guesses.
        assert_eq!("ring2".parse::<SimKind>(), Err(SimKindError::Unknown { name: "ring2".into() }));
        assert_eq!("".parse::<SimKind>(), Err(SimKindError::Unknown { name: String::new() }));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parse_shim_matches_from_str() {
        assert_eq!(SimKind::parse("ring250"), Some(SimKind::Ring250));
        assert_eq!(SimKind::parse("token-ring"), None);
    }

    #[test]
    fn every_backend_runs_through_the_trait() {
        // 8 processors factor at every hierarchy depth (8 = 4×2 = 2×2×2).
        for kind in SimKind::ALL {
            let spec = SimSpec::new(workload(8, 1_000));
            let mut sim = kind.build(&spec).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let outcome = sim.run(&RunOptions::default());
            assert!(outcome.obs.is_none());
            assert_eq!(outcome.report.nodes, 8);
            assert!(outcome.report.sim_end > Time::ZERO, "{}", kind.name());
            assert!(outcome.report.miss_histogram.count() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn spec_overrides_reach_the_hierarchy_backend() {
        // A flat-topology override on `hier` runs a single 16-node ring:
        // nothing above the leaves, so nothing is ever deflected or
        // crosses a bridge.
        let spec = SimSpec::new(workload(16, 500)).with_topology(HierTopology::Flat);
        let outcome = SimKind::Hier.build(&spec).unwrap().run(&RunOptions::default());
        assert_eq!(outcome.report.nodes, 16);
        assert!(outcome.report.block_util == 0.0, "flat has no upper rings");
        // `hier-deflect` reports its deflections through `retries`; the
        // plain kinds must stay at zero.
        let spec = SimSpec::new(workload(16, 500));
        let plain = SimKind::Hier.build(&spec).unwrap().run(&RunOptions::default());
        assert_eq!(plain.report.retries, 0);
        // A bufferless override is accepted and still completes.
        let spec = SimSpec::new(workload(16, 500)).with_bridge_buffer(0);
        let tight = SimKind::Hier.build(&spec).unwrap().run(&RunOptions::default());
        assert_eq!(tight.report.nodes, 16);
    }

    #[test]
    fn explicit_obs_returns_a_recorder() {
        let spec = SimSpec::new(workload(4, 500));
        let mut sim = SimKind::Hier.build(&spec).unwrap();
        let outcome = sim.run(&RunOptions::new().with_obs(ObsConfig::default()));
        let rec = outcome.obs.expect("recorder");
        assert!(!rec.timelines.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_sim_shim_still_drives_a_run() {
        let spec = SimSpec::new(workload(4, 500));
        let mut sim = SimKind::Ring500.build(&spec).unwrap();
        let (report, rec) = run_sim(sim.as_mut(), None);
        assert!(rec.is_none());
        assert!(report.sim_end > Time::ZERO);
    }
}
