//! The backend-neutral [`Simulator`] trait, its [`SimKind`] registry, and
//! the one shared driver ([`run_sim`]) behind every CLI and experiment run.
//!
//! The paper's central method is running the *same* workloads through
//! interchangeable interconnects and comparing curves. Before this module,
//! each backend ([`RingSystem`], [`BusSystem`], [`HierNetSim`]) hand-rolled
//! construction, obs attachment and report assembly, and every cross-cutting
//! feature (sanitizer, telemetry, metrics sinks) had to be threaded through
//! three copies. Now a backend is: implement [`Simulator`], register a
//! [`SimKind`], done — `sim --network {ring,bus,hier}` is one dispatch, and
//! so is the experiment suite's per-point execution.

use ringsim_obs::{ObsConfig, Recorder};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingHierarchy;
use ringsim_trace::Workload;
use ringsim_types::{ConfigError, Time};

use crate::bus_system::{BusSystem, BusSystemConfig};
use crate::config::SystemConfig;
use crate::hier_net::{HierNetConfig, HierNetSim};
use crate::report::SimReport;
use crate::ring_system::RingSystem;

/// A timed system simulator: configure at construction, optionally attach
/// telemetry, run to completion, produce one [`SimReport`].
///
/// The contract mirrors the lifecycle every backend already had:
///
/// 1. construction validates the configuration (`SimKind::build`),
/// 2. [`Simulator::attach_obs`] (optional, before the run) enables strictly
///    observational telemetry — it must not change any simulation result,
/// 3. [`Simulator::run`] runs to completion and is not required to be
///    re-runnable,
/// 4. [`Simulator::take_obs`] yields the recorder after the run (`None`
///    unless obs was attached).
pub trait Simulator {
    /// Enables telemetry for the run: per-transaction trace events plus
    /// gauge timelines. Strictly observational.
    fn attach_obs(&mut self, cfg: ObsConfig);

    /// Takes the telemetry recorder after a run; `None` unless
    /// [`Simulator::attach_obs`] was called.
    fn take_obs(&mut self) -> Option<Recorder>;

    /// Runs the simulation to completion.
    fn run(&mut self) -> SimReport;
}

impl Simulator for RingSystem {
    fn attach_obs(&mut self, cfg: ObsConfig) {
        RingSystem::attach_obs(self, cfg);
    }
    fn take_obs(&mut self) -> Option<Recorder> {
        RingSystem::take_obs(self)
    }
    fn run(&mut self) -> SimReport {
        RingSystem::run(self)
    }
}

impl Simulator for BusSystem {
    fn attach_obs(&mut self, cfg: ObsConfig) {
        BusSystem::attach_obs(self, cfg);
    }
    fn take_obs(&mut self) -> Option<Recorder> {
        BusSystem::take_obs(self)
    }
    fn run(&mut self) -> SimReport {
        BusSystem::run(self)
    }
}

impl Simulator for HierNetSim {
    fn attach_obs(&mut self, cfg: ObsConfig) {
        HierNetSim::attach_obs(self, cfg);
    }
    fn take_obs(&mut self) -> Option<Recorder> {
        HierNetSim::take_obs(self)
    }
    fn run(&mut self) -> SimReport {
        let rep = HierNetSim::run(self);
        self.sim_report(&rep)
    }
}

/// The backend-neutral simulation request a [`SimKind`] builds from: the
/// workload to run plus the knobs every backend understands.
#[derive(Debug, Clone)]
pub struct SimSpec {
    /// Coherence protocol (ring backends; bus is always snooping and the
    /// hierarchy backend abstracts the protocol level away).
    pub protocol: ProtocolKind,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// The workload to drive through the interconnect.
    pub workload: Workload,
}

impl SimSpec {
    /// A spec with the paper's defaults: snooping at 50 MIPS (20 ns).
    #[must_use]
    pub fn new(workload: Workload) -> Self {
        Self { protocol: ProtocolKind::Snooping, proc_cycle: Time::from_ns(20), workload }
    }

    /// Sets the coherence protocol.
    #[must_use]
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the processor cycle time.
    #[must_use]
    pub fn with_proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.proc_cycle = proc_cycle;
        self
    }
}

/// Registry of the interconnect backends, mirroring the sweep crate's
/// experiment registry: every backend the CLIs can name is one variant,
/// buildable from one [`SimSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// 32-bit slotted ring clocked at 500 MHz.
    Ring500,
    /// 32-bit slotted ring clocked at 250 MHz.
    Ring250,
    /// 64-bit split-transaction bus at 50 MHz.
    Bus50,
    /// 64-bit split-transaction bus at 100 MHz.
    Bus100,
    /// Two-level slotted-ring hierarchy (message-level, KSR1-style IRIs).
    Hier,
}

impl SimKind {
    /// Every registered backend, in CLI listing order.
    pub const ALL: [SimKind; 5] =
        [SimKind::Ring500, SimKind::Ring250, SimKind::Bus50, SimKind::Bus100, SimKind::Hier];

    /// Canonical CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimKind::Ring500 => "ring500",
            SimKind::Ring250 => "ring250",
            SimKind::Bus50 => "bus50",
            SimKind::Bus100 => "bus100",
            SimKind::Hier => "hier",
        }
    }

    /// One-line description for `--help`-style listings.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            SimKind::Ring500 => "32-bit slotted ring at 500 MHz",
            SimKind::Ring250 => "32-bit slotted ring at 250 MHz",
            SimKind::Bus50 => "64-bit split-transaction bus at 50 MHz",
            SimKind::Bus100 => "64-bit split-transaction bus at 100 MHz",
            SimKind::Hier => "two-level slotted-ring hierarchy",
        }
    }

    /// Parses a CLI network name; `ring`, `bus` and `hiernet` are accepted
    /// as aliases for the default variants.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring500" | "ring" => Some(SimKind::Ring500),
            "ring250" => Some(SimKind::Ring250),
            "bus50" => Some(SimKind::Bus50),
            "bus100" | "bus" => Some(SimKind::Bus100),
            "hier" | "hiernet" => Some(SimKind::Hier),
            _ => None,
        }
    }

    /// Builds a ready-to-run simulator for this backend from `spec`.
    ///
    /// The hierarchy backend derives its topology from the processor count
    /// (the most balanced `local rings × nodes per ring` factorisation) and
    /// its per-node transaction budget from the workload's reference budget.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid for the
    /// backend (e.g. a prime processor count for `hier`).
    pub fn build(self, spec: &SimSpec) -> Result<Box<dyn Simulator>, ConfigError> {
        let procs = spec.workload.procs();
        Ok(match self {
            SimKind::Ring500 | SimKind::Ring250 => {
                let cfg = match self {
                    SimKind::Ring500 => SystemConfig::ring_500mhz(spec.protocol, procs),
                    _ => SystemConfig::ring_250mhz(spec.protocol, procs),
                }
                .with_proc_cycle(spec.proc_cycle);
                Box::new(RingSystem::new(cfg, spec.workload.clone())?)
            }
            SimKind::Bus50 | SimKind::Bus100 => {
                let cfg = match self {
                    SimKind::Bus100 => BusSystemConfig::bus_100mhz(procs),
                    _ => BusSystemConfig::bus_50mhz(procs),
                }
                .with_proc_cycle(spec.proc_cycle);
                Box::new(BusSystem::new(cfg, spec.workload.clone())?)
            }
            SimKind::Hier => {
                let (rings, per) = balanced_split(procs)?;
                let hier = RingHierarchy::new(rings, per)?;
                let mut cfg = HierNetConfig::new(hier);
                // The hierarchy workload is closed-loop (think → transact →
                // wait), so map the reference budget onto a transaction
                // budget: one coherence transaction per ~50 references
                // keeps the default budgets comparable across backends.
                cfg.txns_per_node = (spec.workload.spec().data_refs_per_proc / 50).max(1);
                Box::new(HierNetSim::new(cfg)?)
            }
        })
    }
}

/// Splits `procs` into the most balanced `(local_rings, nodes_per_ring)`
/// pair with both factors ≥ 2 (closest to square, rings ≤ nodes-per-ring).
fn balanced_split(procs: usize) -> Result<(usize, usize), ConfigError> {
    let mut best = None;
    let mut d = 2;
    while d * d <= procs {
        if procs.is_multiple_of(d) {
            best = Some((d, procs / d));
        }
        d += 1;
    }
    best.ok_or_else(|| {
        ConfigError::new(
            "procs",
            "the hierarchy network needs a composite processor count \
             (local rings × nodes per ring, both at least 2)",
        )
    })
}

/// Drives one simulator run through the shared lifecycle: attach obs when
/// requested, run, collect the recorder.
///
/// When `obs` is `None` but the process-wide metrics sink is on
/// (`experiments --metrics`), a small recorder is attached automatically and
/// its gauge timelines are folded into the global sink — so every backend's
/// timelines reach the metrics document without per-caller wiring. The
/// recorder is returned only for an explicit `obs` request.
pub fn run_sim(sim: &mut dyn Simulator, obs: Option<ObsConfig>) -> (SimReport, Option<Recorder>) {
    let explicit = obs.is_some();
    if let Some(cfg) = obs {
        sim.attach_obs(cfg);
    } else if ringsim_obs::global_metrics_enabled() {
        // Timelines are the point here; keep the (unused) trace tiny.
        sim.attach_obs(ObsConfig { trace_capacity: 64, ..ObsConfig::default() });
    }
    let report = sim.run();
    let recorder = sim.take_obs();
    if explicit {
        return (report, recorder);
    }
    if let Some(rec) = recorder {
        for tl in rec.timelines {
            ringsim_obs::global_record_timeline(tl);
        }
    }
    (report, None)
}

#[cfg(test)]
mod tests {
    use ringsim_trace::{Workload, WorkloadSpec};

    use super::*;

    fn workload(procs: usize, refs: u64) -> Workload {
        Workload::new(WorkloadSpec::demo(procs).with_refs(refs)).unwrap()
    }

    #[test]
    fn registry_round_trips_names() {
        for kind in SimKind::ALL {
            assert_eq!(SimKind::parse(kind.name()), Some(kind));
            assert!(!kind.description().is_empty());
        }
        assert_eq!(SimKind::parse("ring"), Some(SimKind::Ring500));
        assert_eq!(SimKind::parse("bus"), Some(SimKind::Bus100));
        assert_eq!(SimKind::parse("token-ring"), None);
    }

    #[test]
    fn balanced_split_prefers_square() {
        assert_eq!(balanced_split(16).unwrap(), (4, 4));
        assert_eq!(balanced_split(8).unwrap(), (2, 4));
        assert_eq!(balanced_split(12).unwrap(), (3, 4));
        assert!(balanced_split(13).is_err());
        assert!(balanced_split(2).is_err());
    }

    #[test]
    fn every_backend_runs_through_the_trait() {
        for kind in SimKind::ALL {
            let spec = SimSpec::new(workload(4, 1_000));
            let mut sim = kind.build(&spec).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let (report, rec) = run_sim(sim.as_mut(), None);
            assert!(rec.is_none());
            assert_eq!(report.nodes, 4);
            assert!(report.sim_end > Time::ZERO, "{}", kind.name());
            assert!(report.miss_histogram.count() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn explicit_obs_returns_a_recorder() {
        let spec = SimSpec::new(workload(4, 500));
        let mut sim = SimKind::Hier.build(&spec).unwrap();
        let (_, rec) = run_sim(sim.as_mut(), Some(ObsConfig::default()));
        let rec = rec.expect("recorder");
        assert!(!rec.timelines.is_empty());
    }
}
