//! The small discrete-event core shared by the system simulators: a
//! time-ordered event queue with stable FIFO ordering for simultaneous
//! events.
//!
//! The ring simulator is cycle-stepped (the slot pipeline advances every
//! ring clock) and uses the queue for *delayed* actions — memory accesses
//! completing, retries firing; the bus simulator is fully event-driven.
//! Both need the same guarantees:
//!
//! * events fire in non-decreasing time order,
//! * two events scheduled for the same instant fire in scheduling order
//!   (determinism requires breaking ties stably),
//! * scheduling in the past is allowed and fires "now" (the caller decides
//!   what that means).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ringsim_types::Time;

/// One scheduled event. The body rides along inside the heap entry —
/// event payloads are a few words, so storing them inline beats paying a
/// side-table insert/remove on every schedule/pop (the queue is popped
/// once per simulated event, making this the simulators' hottest edge).
/// Ordering uses only `(at, seq)`; `seq` is unique, so the body never
/// influences — and therefore never needs to support — comparisons.
#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the queue pops earliest
        // `(at, seq)` first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use ringsim_core::EventQueue;
/// use ringsim_types::Time;
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(Time::from_ns(30), "later");
/// q.schedule(Time::from_ns(10), "first");
/// q.schedule(Time::from_ns(10), "second"); // same instant: FIFO
/// assert_eq!(q.pop_due(Time::from_ns(10)), Some((Time::from_ns(10), "first")));
/// assert_eq!(q.pop_due(Time::from_ns(10)), Some((Time::from_ns(10), "second")));
/// assert_eq!(q.pop_due(Time::from_ns(10)), None); // "later" is not due yet
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match self.heap.peek() {
            Some(e) if e.at <= now => {}
            _ => return None,
        }
        let e = self.heap.pop().expect("peeked");
        Some((e.at, e.event))
    }

    /// Pops the earliest event regardless of time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        Some((e.at, e.event))
    }

    /// Time of the next event, if any.
    #[must_use]
    pub fn next_at(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(5), 5);
        q.schedule(Time::from_ns(1), 1);
        q.schedule(Time::from_ns(3), 3);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(3), 3)));
        assert_eq!(q.pop(), Some((Time::from_ns(5), 5)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time::from_ns(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 'a');
        q.schedule(Time::from_ns(20), 'b');
        assert_eq!(q.pop_due(Time::from_ns(5)), None);
        assert_eq!(q.pop_due(Time::from_ns(15)), Some((Time::from_ns(10), 'a')));
        assert_eq!(q.pop_due(Time::from_ns(15)), None);
        assert!(!q.is_empty());
        assert_eq!(q.next_at(), Some(Time::from_ns(20)));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, 0);
        q.schedule(Time::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
