//! The timed split-transaction-bus system simulator (the paper's baseline,
//! §4.3): the same processors, caches and workloads as the ring simulator,
//! attached to a FIFO-arbitrated snooping bus.
//!
//! Unlike the ring — where messages are physically in flight and conflicts
//! need acks, retries and home-side locks — the bus serialises every
//! coherence transaction at its address phase. The simulator exploits that:
//! snoop resolution and cache-state updates are applied *atomically* at the
//! end of each request phase (the canonical serialisation point of bus
//! snooping), while data delivery and processor wake-up keep their real
//! latencies (memory fetch, response-phase arbitration and transfer).

use ringsim_bus::{Bus, BusConfig, PhaseKind};
use ringsim_cache::{AccessClass, Cache, CacheConfig, LineState};
use ringsim_obs::{LatencyHistogram, Obs, ObsConfig, Recorder};
use ringsim_proto::guarded;
use ringsim_proto::transitions::{BusOp, DragonAction, MesiAction};
use ringsim_trace::{AddressSpace, NodeStream, Workload, BLOCK_BYTES};
use ringsim_types::stats::RunningMean;
use ringsim_types::{AccessKind, BlockAddr, CoherenceEvents, ConfigError, NodeId, Region, Time};

use crate::collections::FnvMap;
use crate::report::{ClassLatencies, NodeMeasure, SimReport};
use crate::sanitize;

/// Windowed-accumulator slot for bus arbitration wait (see [`Obs::acc_add`]).
const ACC_ARB_WAIT: usize = 0;

/// Which coherence protocol the snooping bus runs.
///
/// All three share the arbitration, timing and event machinery of
/// [`BusSystem`]; they differ only in what the snoop does at the
/// serialisation point. MESI and Dragon dispatch every such decision
/// through the guarded rule sets in [`ringsim_proto::guarded`] — the same
/// tables the `ringsim-check` model checker exhausts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BusProtocol {
    /// The paper's 3-state write-invalidate protocol (MSI).
    #[default]
    Msi,
    /// 4-state MESI: read misses with no other cached copy fill
    /// clean-exclusive, and a later write hit promotes to modified
    /// silently — no bus transaction at all.
    Mesi,
    /// Dragon write-update: writes to shared lines broadcast the new word
    /// instead of invalidating, so copies stay valid and the writer
    /// becomes the shared-modified supplier.
    Dragon,
}

/// Configuration of a bus-based system.
///
/// # Examples
///
/// ```
/// use ringsim_core::BusSystemConfig;
/// use ringsim_types::Time;
///
/// let cfg = BusSystemConfig::bus_100mhz(16).with_mips(100);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.proc_cycle, Time::from_ns(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusSystemConfig {
    /// Bus parameters.
    pub bus: BusConfig,
    /// Per-processor cache geometry.
    pub cache: CacheConfig,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// Local memory bank access time (140 ns in the paper).
    pub mem_latency: Time,
    /// Dirty-cache supply time.
    pub supply_latency: Time,
    /// Coherence protocol variant the snoop runs.
    pub protocol: BusProtocol,
}

impl BusSystemConfig {
    /// The paper's 50 MHz 64-bit bus with default caches and 50 MIPS
    /// processors.
    #[must_use]
    pub fn bus_50mhz(nodes: usize) -> Self {
        Self {
            bus: BusConfig::bus_50mhz(nodes),
            cache: CacheConfig::paper_default(),
            proc_cycle: Time::from_ns(20),
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
            protocol: BusProtocol::Msi,
        }
    }

    /// The paper's 100 MHz 64-bit bus.
    #[must_use]
    pub fn bus_100mhz(nodes: usize) -> Self {
        Self { bus: BusConfig::bus_100mhz(nodes), ..Self::bus_50mhz(nodes) }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.bus.nodes
    }

    /// Builder-style processor cycle override.
    #[must_use]
    pub fn with_proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.proc_cycle = proc_cycle;
        self
    }

    /// Builder-style protocol override.
    #[must_use]
    pub fn with_protocol(mut self, protocol: BusProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Builder-style MIPS override.
    ///
    /// # Panics
    ///
    /// Panics if `mips` is zero.
    #[must_use]
    pub fn with_mips(self, mips: u64) -> Self {
        assert!(mips > 0, "mips must be positive");
        self.with_proc_cycle(Time::from_ps(1_000_000 / mips))
    }

    /// Validates all parts.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.bus.validate()?;
        self.cache.validate()?;
        if self.bus.nodes > 64 {
            return Err(ConfigError::new("bus.nodes", "at most 64 nodes supported"));
        }
        if self.proc_cycle.is_zero() || self.mem_latency.is_zero() || self.supply_latency.is_zero()
        {
            return Err(ConfigError::new("timing", "all latencies must be non-zero"));
        }
        if self.cache.block_bytes != self.bus.block_bytes {
            return Err(ConfigError::new(
                "cache.block_bytes",
                "must match bus.block_bytes (one block per response)",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    Read,
    Write,
    Upgrade,
}

#[derive(Debug, Clone, Copy)]
struct Txn {
    block: BlockAddr,
    kind: TxnKind,
    region: Region,
    start: Time,
    /// Set at the serialisation point: how the miss was served.
    served: Served,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    Pending,
    Local,
    CleanRemote,
    Dirty,
}

#[derive(Debug)]
struct BusNode {
    stream: NodeStream,
    cache: Cache,
    ready_at: Time,
    instr_carry: f64,
    refs_issued: u64,
    warmup_refs: u64,
    total_refs: u64,
    measuring: bool,
    measure_start: Time,
    busy: Time,
    finish_at: Option<Time>,
    txn: Option<Txn>,
    misses: u64,
    miss_lat: LatencyHistogram,
    /// MESI/Dragon: blocks this node holds clean-exclusive (E) — the cache
    /// line is `We`, but the data was never written and memory is still up
    /// to date. Always empty under MSI.
    excl: FnvMap<u64, ()>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Resume the processor's issue loop.
    ProcReady { node: usize },
    /// A miss's request/address phase completes: snoop resolution.
    RequestDone { node: usize },
    /// An invalidation (upgrade) address phase completes.
    UpgradeDone { node: usize },
    /// The blocked processor's transaction finishes.
    Complete { node: usize },
}

/// Quantum of lookahead (in time) a processor may run ahead of the global
/// event clock while it keeps hitting in its cache. Bounds the window in
/// which a fast-forwarded node could miss a remote invalidation.
const PROC_QUANTUM: Time = Time::from_ns(200);

/// Snooping-visible state of one block, merged so every bus transaction
/// resolves ownership, data timing and presence with one map lookup.
/// An absent entry reads as the defaults: unowned, data ready at time
/// zero, cached nowhere.
#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    /// Current write-exclusive holder (bus snooping resolves ownership
    /// instantly at the serialisation point).
    owner: Option<NodeId>,
    /// Earliest time the block's data is available at its current
    /// owner/home (covers data still in flight to a new owner).
    ready: Time,
    /// Bitmask of nodes that may hold a valid copy (bit `i` = node `i`;
    /// the ≤64-node limit makes one word enough). A superset of the
    /// truly-valid holders is sufficient: snooping a node whose line is
    /// already invalid is a no-op, so invalidation only needs to visit
    /// set bits instead of every node.
    present: u64,
}

/// The timed bus-based system simulator.
///
/// # Examples
///
/// ```
/// use ringsim_core::{BusSystem, BusSystemConfig};
/// use ringsim_trace::{Workload, WorkloadSpec};
///
/// let cfg = BusSystemConfig::bus_100mhz(4);
/// let workload = Workload::new(WorkloadSpec::demo(4).with_refs(2_000)).unwrap();
/// let report = BusSystem::new(cfg, workload).unwrap().run();
/// assert!(report.proc_util > 0.0);
/// ```
#[derive(Debug)]
pub struct BusSystem {
    cfg: BusSystemConfig,
    bus: Bus,
    nodes: Vec<BusNode>,
    space: AddressSpace,
    /// Per-block coherence directory, one entry per block the bus has
    /// touched (every consumer of ownership, data timing and presence pays
    /// for a single lookup per transaction).
    blocks: FnvMap<u64, BlockState>,
    /// Nodes past warm-up (measured-window check without a scan).
    measuring_nodes: usize,
    queue: crate::EventQueue<Event>,
    now: Time,
    miss_lat: RunningMean,
    miss_hist: LatencyHistogram,
    upg_lat: RunningMean,
    class_lat: ClassLatencies,
    events: CoherenceEvents,
    snapshot: Option<(ringsim_bus::BusStats, Time)>,
    // Telemetry (no-op unless `attach_obs` was called).
    obs: Obs,
    obs_bus_tl: usize,
    obs_window: (ringsim_bus::BusStats, Time),
}

impl BusSystem {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid or the
    /// workload's processor count does not match the bus's node count.
    pub fn new(cfg: BusSystemConfig, workload: Workload) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.procs() != cfg.nodes() {
            return Err(ConfigError::new(
                "workload.procs",
                format!("workload has {} processors, bus has {}", workload.procs(), cfg.nodes()),
            ));
        }
        let spec = workload.spec().clone();
        let space = workload.space();
        let bus = Bus::new(cfg.bus)?;
        let nodes = workload
            .into_streams()
            .into_iter()
            .map(|stream| {
                Ok(BusNode {
                    stream,
                    cache: Cache::new(cfg.cache)?,
                    ready_at: Time::ZERO,
                    instr_carry: 0.0,
                    refs_issued: 0,
                    warmup_refs: spec.warmup_refs_per_proc,
                    total_refs: spec.warmup_refs_per_proc + spec.data_refs_per_proc,
                    measuring: false,
                    measure_start: Time::ZERO,
                    busy: Time::ZERO,
                    finish_at: None,
                    txn: None,
                    misses: 0,
                    miss_lat: LatencyHistogram::new(),
                    excl: FnvMap::default(),
                })
            })
            .collect::<Result<Vec<_>, ConfigError>>()?;
        Ok(Self {
            cfg,
            bus,
            nodes,
            space,
            blocks: FnvMap::default(),
            measuring_nodes: 0,
            queue: crate::EventQueue::new(),
            now: Time::ZERO,
            miss_lat: RunningMean::default(),
            miss_hist: LatencyHistogram::new(),
            upg_lat: RunningMean::default(),
            class_lat: ClassLatencies::default(),
            events: CoherenceEvents::default(),
            snapshot: None,
            obs: Obs::disabled(),
            obs_bus_tl: usize::MAX,
            obs_window: (ringsim_bus::BusStats::default(), Time::ZERO),
        })
    }

    /// Enables telemetry for this run: per-transaction trace events plus a
    /// `"bus"` gauge timeline (busy fractions over the sampling window,
    /// outstanding transactions, mean arbitration wait). Strictly
    /// observational.
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let mut obs = Obs::enabled(cfg, self.nodes.len());
        self.obs_bus_tl = obs
            .add_timeline("bus", &["busy", "addr_busy", "data_busy", "outstanding", "arb_wait_ns"]);
        self.obs = obs;
    }

    /// Takes the telemetry recorder after a run; `None` unless
    /// [`BusSystem::attach_obs`] was called.
    pub fn take_obs(&mut self) -> Option<Recorder> {
        std::mem::take(&mut self.obs).into_recorder()
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        self.queue.schedule(at, ev);
    }

    fn home_of(&self, block: BlockAddr) -> NodeId {
        self.space.home_of_block(block)
    }

    /// Runs to completion.
    pub fn run(&mut self) -> SimReport {
        for i in 0..self.nodes.len() {
            self.schedule(Time::ZERO, Event::ProcReady { node: i });
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            match ev {
                Event::ProcReady { node } => self.step_processor(node),
                Event::RequestDone { node } => self.request_done(node),
                Event::UpgradeDone { node } => self.upgrade_done(node),
                Event::Complete { node } => self.complete(node),
            }
            if self.snapshot.is_none() && self.measuring_nodes == self.nodes.len() {
                self.snapshot = Some((self.bus.stats(), self.now));
            }
            if self.obs.sample_due(self.now) {
                self.sample_gauges();
            }
        }
        self.build_report()
    }

    /// Pushes one row onto the `"bus"` gauge timeline: busy fractions are
    /// deltas over the window since the previous sample, not run-to-date.
    fn sample_gauges(&mut self) {
        let stats = self.bus.stats();
        let (prev, since) = self.obs_window;
        let window = self.now.saturating_sub(since);
        let frac = |t: Time| {
            if window.is_zero() {
                0.0
            } else {
                (t.as_ps() as f64 / window.as_ps() as f64).min(1.0)
            }
        };
        let outstanding = self.nodes.iter().filter(|n| n.txn.is_some()).count() as f64;
        let arb_wait = self.obs.acc_take_mean(ACC_ARB_WAIT);
        let values = vec![
            frac(stats.busy.saturating_sub(prev.busy)),
            frac(stats.address_busy.saturating_sub(prev.address_busy)),
            frac(stats.data_busy.saturating_sub(prev.data_busy)),
            outstanding,
            arb_wait,
        ];
        self.obs.sample(self.obs_bus_tl, self.now, values);
        self.obs_window = (stats, self.now);
    }

    fn step_processor(&mut self, i: usize) {
        let horizon = self.now + PROC_QUANTUM;
        loop {
            let node = &mut self.nodes[i];
            if node.finish_at.is_some() || node.txn.is_some() {
                return;
            }
            if node.ready_at > horizon {
                let at = node.ready_at;
                self.schedule(at, Event::ProcReady { node: i });
                return;
            }
            if node.refs_issued == node.total_refs {
                node.finish_at = Some(node.ready_at);
                return;
            }
            let icycles = node.instr_carry + node.stream.instr_per_data();
            let whole = icycles.floor();
            node.instr_carry = icycles - whole;
            let cost = self.cfg.proc_cycle * (1 + whole as u64);
            if node.measuring {
                node.busy += cost;
            }
            node.ready_at += cost;
            let r = node.stream.next_ref();
            node.refs_issued += 1;
            if !node.measuring && node.refs_issued > node.warmup_refs {
                node.measuring = true;
                self.measuring_nodes += 1;
                node.measure_start = node.ready_at;
                node.busy = cost;
            }
            let block = r.addr.block(BLOCK_BYTES);
            let class = node.cache.classify(block, r.kind);
            if node.measuring {
                match (r.region, r.kind) {
                    (Region::Private, AccessKind::Read) => self.events.private_reads += 1,
                    (Region::Private, AccessKind::Write) => self.events.private_writes += 1,
                    (Region::Shared, AccessKind::Read) => self.events.shared_reads += 1,
                    (Region::Shared, AccessKind::Write) => self.events.shared_writes += 1,
                }
            }
            match class {
                AccessClass::Hit => {
                    // A write hit on a clean-exclusive line silently
                    // promotes it to modified — the E-state payoff: no bus
                    // transaction. The directory must still learn that the
                    // node is now the dirty owner, so the next remote miss
                    // snoops a cache supply instead of memory.
                    if self.cfg.protocol != BusProtocol::Msi
                        && r.kind == AccessKind::Write
                        && self.nodes[i].excl.remove(&block.raw()).is_some()
                        && r.region == Region::Shared
                    {
                        let silent = match self.cfg.protocol {
                            BusProtocol::Msi => unreachable!(),
                            BusProtocol::Mesi => {
                                guarded::mesi_action(BusOp::WriteExclusiveHit, false, false, None)
                                    == MesiAction::PromoteSilently
                            }
                            BusProtocol::Dragon => {
                                guarded::dragon_action(BusOp::WriteExclusiveHit, false, false, None)
                                    == DragonAction::PromoteSilently
                            }
                        };
                        debug_assert!(silent);
                        self.blocks.entry(block.raw()).or_default().owner = Some(NodeId::new(i));
                    }
                }
                AccessClass::Upgrade | AccessClass::Miss => {
                    let kind = match (class, r.kind) {
                        (AccessClass::Upgrade, _) => TxnKind::Upgrade,
                        (_, AccessKind::Read) => TxnKind::Read,
                        (_, AccessKind::Write) => TxnKind::Write,
                    };
                    let start = self.nodes[i].ready_at;
                    self.nodes[i].txn =
                        Some(Txn { block, kind, region: r.region, start, served: Served::Pending });
                    let op = match kind {
                        TxnKind::Read => "read",
                        TxnKind::Write => "write",
                        TxnKind::Upgrade => "upgrade",
                    };
                    self.obs.txn_begin(i, op, block.raw(), start);
                    // Arbitrate for the address phase.
                    let cycles = if kind == TxnKind::Upgrade {
                        self.cfg.bus.inval_cycles
                    } else {
                        self.cfg.bus.request_cycles
                    };
                    let (grant, end) = self.bus.acquire_kind(start, cycles, PhaseKind::Address);
                    self.obs.acc_add(ACC_ARB_WAIT, grant.saturating_sub(start).as_ns_f64());
                    self.obs.txn_mark(i, "arbitrate", grant);
                    let ev = if kind == TxnKind::Upgrade {
                        Event::UpgradeDone { node: i }
                    } else {
                        Event::RequestDone { node: i }
                    };
                    self.schedule(end, ev);
                    return;
                }
            }
        }
    }

    /// Invalidate every other cached copy of `block`; returns how many
    /// copies were dropped. Visits only the nodes in the block's presence
    /// mask (ascending order, matching the all-nodes scan it replaces).
    fn invalidate_others(&mut self, block: BlockAddr, except: usize) -> u64 {
        let mut count = 0;
        if let Some(b) = self.blocks.get_mut(&block.raw()) {
            let mut others = b.present & !(1u64 << except);
            b.present &= 1u64 << except; // only `except`'s copy (if any) survives
            if b.owner.is_some_and(|o| o.index() != except) {
                b.owner = None;
            }
            while others != 0 {
                let j = others.trailing_zeros() as usize;
                others &= others - 1;
                if self.nodes[j].cache.snoop_invalidate(block).is_valid() {
                    count += 1;
                }
                if self.cfg.protocol != BusProtocol::Msi {
                    self.nodes[j].excl.remove(&block.raw());
                }
            }
        }
        count
    }

    /// Nodes other than `except` whose cached copy of `block` is actually
    /// valid. The presence mask is only a superset, so the caches are
    /// consulted — this is the "shared line" a real MESI/Dragon bus snoop
    /// asserts. Ascending node order for determinism.
    fn valid_others(&self, block: BlockAddr, except: usize) -> Vec<usize> {
        let Some(b) = self.blocks.get(&block.raw()) else { return Vec::new() };
        let mut others = b.present & !(1u64 << except);
        let mut out = Vec::new();
        while others != 0 {
            let j = others.trailing_zeros() as usize;
            others &= others - 1;
            if self.nodes[j].cache.state_of(block).is_valid() {
                out.push(j);
            }
        }
        out
    }

    /// Downgrades any write-exclusive copy among `others` to shared and
    /// clears its clean-exclusive marker (MESI/Dragon read- or
    /// update-miss snoop: an E or M holder observes the fill and demotes).
    fn downgrade_exclusive(&mut self, block: BlockAddr, others: &[usize]) {
        for &j in others {
            if self.nodes[j].cache.state_of(block) == LineState::We {
                self.nodes[j].cache.snoop_downgrade(block);
                self.nodes[j].excl.remove(&block.raw());
            }
        }
    }

    /// Dragon write to a still-shared line: the address phase we just won
    /// broadcast the update word. Other copies stay valid and take the new
    /// data; the writer becomes (or stays) the shared-modified owner —
    /// unless every other copy has rolled out, in which case the update
    /// found no listeners and the line promotes to modified.
    fn dragon_update_done(&mut self, i: usize, t: Txn) {
        let me = NodeId::new(i);
        let block = t.block;
        let others = self.valid_others(block, i);
        let owner = self.blocks.get(&block.raw()).and_then(|b| b.owner.filter(|&d| d != me));
        let action = guarded::dragon_action(
            BusOp::WriteSharedHit,
            !others.is_empty(),
            owner.is_some(),
            None,
        );
        match action {
            DragonAction::BroadcastUpdate => {
                // A previous shared-modified supplier hands that role to
                // the writer; every copy stays valid.
            }
            DragonAction::PromoteToModified => {
                let promoted = self.nodes[i].cache.promote(block);
                debug_assert!(promoted);
            }
            a => unreachable!("update dispatch yielded {a:?}"),
        }
        self.blocks.entry(block.raw()).or_default().owner = Some(me);
        if self.nodes[i].measuring {
            let local = self.home_of(block) == me;
            match (!others.is_empty(), local) {
                (false, true) => self.events.upgrade_nosharers_local += 1,
                (false, false) => self.events.upgrade_nosharers_remote += 1,
                (true, true) => self.events.upgrade_sharers_local += 1,
                (true, false) => self.events.upgrade_sharers_remote += 1,
            }
        }
        self.schedule(self.now, Event::Complete { node: i });
    }

    fn upgrade_done(&mut self, i: usize) {
        let t = self.nodes[i].txn.expect("upgrade txn");
        let block = t.block;
        if self.nodes[i].cache.state_of(block).is_valid() {
            if self.cfg.protocol == BusProtocol::Dragon && t.region == Region::Shared {
                self.dragon_update_done(i, t);
                return;
            }
            // Private blocks are only ever touched by their owning node, so
            // there is nothing to invalidate and no reader of their
            // directory entry — skip the map (and keep them out of it).
            let invalidated =
                if t.region == Region::Shared { self.invalidate_others(block, i) } else { 0 };
            let promoted = self.nodes[i].cache.promote(block);
            debug_assert!(promoted);
            if t.region == Region::Shared {
                self.blocks.entry(block.raw()).or_default().owner = Some(NodeId::new(i));
            }
            if self.nodes[i].measuring && t.region == Region::Shared {
                let local = self.home_of(block) == NodeId::new(i);
                match (invalidated > 0, local) {
                    (false, true) => self.events.upgrade_nosharers_local += 1,
                    (false, false) => self.events.upgrade_nosharers_remote += 1,
                    (true, true) => self.events.upgrade_sharers_local += 1,
                    (true, false) => self.events.upgrade_sharers_remote += 1,
                }
                self.events.invalidated_copies += invalidated;
            } else if self.nodes[i].measuring && t.region == Region::Private {
                self.events.upgrade_nosharers_local += 1;
            }
            self.schedule(self.now, Event::Complete { node: i });
        } else {
            // The line was invalidated while we waited for the bus: the
            // address phase we just completed doubles as the request phase
            // of a write miss.
            self.nodes[i].txn = Some(Txn { kind: TxnKind::Write, served: Served::Pending, ..t });
            self.request_done(i);
        }
    }

    fn request_done(&mut self, i: usize) {
        self.obs.txn_mark(i, "request", self.now);
        let me = NodeId::new(i);
        let t = self.nodes[i].txn.expect("miss txn");
        let block = t.block;
        let measuring = self.nodes[i].measuring;

        if t.region == Region::Private {
            // Private blocks are only ever touched by their owning node:
            // no other cache can hold a copy, the home is always local,
            // and the node's previous transaction on the block completed
            // before this one started, so its data-ready time cannot bind.
            // The directory lookup, snoop resolution and supply decision
            // all resolve trivially — skip them, and keep private blocks
            // out of the directory map entirely (nothing ever reads their
            // entries, and a smaller map makes the shared lookups cheaper).
            if measuring {
                self.events.private_misses += 1;
            }
            let is_write = t.kind != TxnKind::Read;
            let completion = self.now + self.cfg.mem_latency;
            if let Some(txn) = self.nodes[i].txn.as_mut() {
                txn.served = Served::Local;
            }
            let state = if is_write {
                LineState::We
            } else if self.cfg.protocol == BusProtocol::Msi {
                LineState::Rs
            } else {
                // MESI/Dragon: a private read miss fills clean-exclusive,
                // so the (common) subsequent write promotes silently.
                self.nodes[i].excl.insert(block.raw(), ());
                LineState::We
            };
            if let Some((victim, vstate)) = self.nodes[i].cache.fill(block, state) {
                self.retire_victim(me, victim, vstate, measuring, completion);
            }
            self.schedule(completion, Event::Complete { node: i });
            return;
        }

        let home = self.home_of(block);
        let local = home == me;
        let (owner, ready) = match self.blocks.get(&block.raw()) {
            Some(b) => (b.owner.filter(|&d| d != me), b.ready),
            None => (None, Time::ZERO),
        };

        // --- classification (mirrors the reference interpreter's buckets)
        if measuring {
            match (t.kind, owner) {
                (TxnKind::Read, Some(d)) => {
                    if dirty_on_path(me, home, d, self.cfg.nodes()) {
                        self.events.read_dirty_2 += 1;
                    } else {
                        self.events.read_dirty_1 += 1;
                    }
                }
                (TxnKind::Read, None) => {
                    if local {
                        self.events.read_clean_local += 1;
                    } else {
                        self.events.read_clean_remote += 1;
                    }
                }
                (_, Some(d)) => {
                    if dirty_on_path(me, home, d, self.cfg.nodes()) {
                        self.events.write_dirty_2 += 1;
                    } else {
                        self.events.write_dirty_1 += 1;
                    }
                }
                (_, None) => {
                    // Sharer count observed below (invalidate_others).
                }
            }
        }

        // --- snoop resolution (atomic at the serialisation point)
        let is_write = t.kind != TxnKind::Read;
        let mut invalidated = 0;
        let mut fill_state = if is_write { LineState::We } else { LineState::Rs };
        // Dragon write miss that updated live copies instead of purging
        // them (keeps the sharers-vs-nosharers event buckets honest).
        let mut updated_sharers = false;
        match self.cfg.protocol {
            BusProtocol::Msi => {
                if is_write {
                    invalidated = self.invalidate_others(block, i);
                } else if let Some(d) = owner {
                    self.nodes[d.index()].cache.snoop_downgrade(block);
                    if let Some(b) = self.blocks.get_mut(&block.raw()) {
                        b.owner = None;
                    }
                }
            }
            BusProtocol::Mesi => {
                let others = self.valid_others(block, i);
                let op = if is_write { BusOp::WriteMiss } else { BusOp::ReadMiss };
                match guarded::mesi_action(op, !others.is_empty(), owner.is_some(), None) {
                    MesiAction::FillExclusive => {
                        self.nodes[i].excl.insert(block.raw(), ());
                        fill_state = LineState::We;
                    }
                    MesiAction::FillShared => self.downgrade_exclusive(block, &others),
                    MesiAction::OwnerSuppliesShared => {
                        let d = owner.expect("dispatched with an owner");
                        self.nodes[d.index()].cache.snoop_downgrade(block);
                        if let Some(b) = self.blocks.get_mut(&block.raw()) {
                            b.owner = None;
                        }
                    }
                    MesiAction::OwnerSuppliesModified
                    | MesiAction::InvalidateAndFillModified
                    | MesiAction::FillModified => {
                        invalidated = self.invalidate_others(block, i);
                    }
                    a @ (MesiAction::InvalidateAndPromote
                    | MesiAction::Promote
                    | MesiAction::PromoteSilently) => {
                        unreachable!("miss dispatch yielded {a:?}")
                    }
                }
            }
            BusProtocol::Dragon => {
                let others = self.valid_others(block, i);
                let op = if is_write { BusOp::WriteMiss } else { BusOp::ReadMiss };
                match guarded::dragon_action(op, !others.is_empty(), owner.is_some(), None) {
                    DragonAction::FillExclusive => {
                        self.nodes[i].excl.insert(block.raw(), ());
                        fill_state = LineState::We;
                    }
                    DragonAction::FillShared => self.downgrade_exclusive(block, &others),
                    DragonAction::OwnerSuppliesShared => {
                        // The owner supplies and demotes to shared-modified:
                        // it keeps the dirty copy and stays the supplier.
                        let d = owner.expect("dispatched with an owner");
                        self.nodes[d.index()].cache.snoop_downgrade(block);
                        self.nodes[d.index()].excl.remove(&block.raw());
                    }
                    DragonAction::FillModified => {}
                    DragonAction::FillSharedOwnerUpdate => {
                        // No invalidation: the other copies take the update
                        // word and stay valid; a previous owner demotes to
                        // shared-clean and the writer fills shared-modified.
                        self.downgrade_exclusive(block, &others);
                        fill_state = LineState::Rs;
                        updated_sharers = true;
                    }
                    a @ (DragonAction::BroadcastUpdate
                    | DragonAction::PromoteToModified
                    | DragonAction::PromoteSilently) => {
                        unreachable!("miss dispatch yielded {a:?}")
                    }
                }
            }
        }
        if measuring && is_write && owner.is_none() {
            match (invalidated > 0 || updated_sharers, local) {
                (false, true) => self.events.write_nosharers_local += 1,
                (false, false) => self.events.write_nosharers_remote += 1,
                (true, true) => self.events.write_sharers_local += 1,
                (true, false) => self.events.write_sharers_remote += 1,
            }
        }
        if measuring && is_write {
            self.events.invalidated_copies += invalidated;
        }

        // --- timing: who supplies, and when
        let completion = match owner {
            Some(_) => {
                // Cache-to-cache transfer: wait for the owner's copy, the
                // supply access, then a response phase on the bus.
                let supply_at = self.now.max(ready) + self.cfg.supply_latency;
                let (_, re) = self.bus.acquire_kind(
                    supply_at,
                    self.cfg.bus.response_cycles(),
                    PhaseKind::Data,
                );
                re
            }
            None if local => self.now.max(ready) + self.cfg.mem_latency,
            None => {
                let fetch_done = self.now.max(ready) + self.cfg.mem_latency;
                let (_, re) = self.bus.acquire_kind(
                    fetch_done,
                    self.cfg.bus.response_cycles(),
                    PhaseKind::Data,
                );
                re
            }
        };

        // Record how the miss was served for the class-latency breakdown.
        if let Some(txn) = self.nodes[i].txn.as_mut() {
            txn.served = match owner {
                Some(_) => Served::Dirty,
                None if local => Served::Local,
                None => Served::CleanRemote,
            };
        }
        // --- commit cache state now (serialisation point), deliver later.
        let b = self.blocks.entry(block.raw()).or_default();
        if is_write {
            b.owner = Some(me);
        }
        b.ready = completion;
        b.present |= 1u64 << i;
        if let Some((victim, vstate)) = self.nodes[i].cache.fill(block, fill_state) {
            self.retire_victim(me, victim, vstate, measuring, completion);
        }
        self.schedule(completion, Event::Complete { node: i });
    }

    /// Drops the evicted `victim` from the directory (a private victim has
    /// no entry — a no-op) and, for a dirty victim, performs the write-back:
    /// one response-phase transfer after `completion` when the victim's
    /// home is remote.
    fn retire_victim(
        &mut self,
        me: NodeId,
        victim: BlockAddr,
        vstate: LineState,
        measuring: bool,
        completion: Time,
    ) {
        // A clean-exclusive victim is `We` in the cache but was never
        // written: no write-back. (The marker map is empty under MSI.)
        let was_excl = self.nodes[me.index()].excl.remove(&victim.raw()).is_some();
        let mut dirty = vstate.is_dirty() && !was_excl;
        if let Some(v) = self.blocks.get_mut(&victim.raw()) {
            v.present &= !(1u64 << me.index());
            if v.owner == Some(me) {
                v.owner = None;
                // A Dragon shared-modified victim holds the only fresh
                // copy: its rollout writes the data back even though the
                // line is only shared.
                if vstate == LineState::Rs {
                    dirty = true;
                }
            }
        }
        if dirty {
            let vhome = self.home_of(victim);
            if vhome != me {
                self.bus.acquire_kind(completion, self.cfg.bus.response_cycles(), PhaseKind::Data);
            }
            if measuring {
                if vhome == me {
                    self.events.writeback_local += 1;
                } else {
                    self.events.writeback_remote += 1;
                }
            }
        }
    }

    fn complete(&mut self, i: usize) {
        let t = self.nodes[i].txn.take().expect("completing absent txn");
        if sanitize::sanitize_enabled() {
            // Snoop resolution is atomic at the serialisation point, so no
            // transient carve-outs are needed: SWMR must hold outright.
            let states: Vec<LineState> =
                self.nodes.iter().map(|n| n.cache.state_of(t.block)).collect();
            sanitize::check_swmr(t.block, &states, &vec![false; states.len()]);
        }
        let node = &mut self.nodes[i];
        node.ready_at = node.ready_at.max(self.now);
        let latency = self.now.saturating_sub(t.start);
        if node.measuring {
            if t.kind == TxnKind::Upgrade {
                self.upg_lat.push_time_ns(latency);
                self.class_lat.upgrade.record_time(latency);
                self.obs.txn_end(i, "upgrade", "upgrade", self.now);
            } else {
                self.miss_lat.push_time_ns(latency);
                self.miss_hist.record_time(latency);
                node.misses += 1;
                node.miss_lat.record_time(latency);
                let class = match t.served {
                    Served::Local => {
                        self.class_lat.local.record_time(latency);
                        "local"
                    }
                    Served::Dirty => {
                        self.class_lat.dirty.record_time(latency);
                        "dirty"
                    }
                    _ => {
                        self.class_lat.clean_remote.record_time(latency);
                        "clean_remote"
                    }
                };
                self.obs.txn_end(i, "miss", class, self.now);
            }
        } else {
            // Warmup transactions are excluded from every metric, so drop
            // them from the trace too: spans and histograms must agree.
            self.obs.txn_abandon(i);
        }
        self.step_processor(i);
    }

    /// Coherence state of `block` in node `i`'s cache (inspection hook).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cache_state(&self, i: usize, block: BlockAddr) -> LineState {
        self.nodes[i].cache.state_of(block)
    }

    fn build_report(&mut self) -> SimReport {
        let (per_node, proc_util, sim_end) =
            crate::report::summarize_nodes(self.nodes.iter().map(|n| NodeMeasure {
                finished_at: n.finish_at.expect("all nodes finished"),
                measure_start: n.measure_start,
                busy: n.busy,
                misses: n.misses,
                miss_lat: &n.miss_lat,
            }));
        let stats = self.bus.stats();
        let (base, start) = self.snapshot.unwrap_or((ringsim_bus::BusStats::default(), Time::ZERO));
        let window = sim_end.saturating_sub(start);
        let busy = stats.busy.saturating_sub(base.busy);
        let addr_busy = stats.address_busy.saturating_sub(base.address_busy);
        let data_busy = stats.data_busy.saturating_sub(base.data_busy);
        let frac = |t: Time| {
            if window.is_zero() {
                0.0
            } else {
                (t.as_ps() as f64 / window.as_ps() as f64).min(1.0)
            }
        };
        let report = SimReport {
            protocol: match self.cfg.protocol {
                BusProtocol::Msi => "bus-snooping".into(),
                BusProtocol::Mesi => "bus-mesi".into(),
                BusProtocol::Dragon => "bus-dragon".into(),
            },
            nodes: self.cfg.nodes(),
            proc_cycle: self.cfg.proc_cycle,
            sim_end,
            proc_util,
            ring_util: frac(busy),
            probe_util: frac(addr_busy),
            block_util: frac(data_busy),
            miss_latency: self.miss_lat,
            miss_histogram: self.miss_hist.clone(),
            upgrade_latency: self.upg_lat,
            class_latencies: self.class_lat.clone(),
            events: self.events,
            retries: 0,
            per_node,
        };
        if ringsim_obs::global_metrics_enabled() {
            ringsim_obs::global_record(&report.metrics_summary());
        }
        report
    }
}

/// Geometry classification kept for cross-interconnect comparability of
/// event counts (latency on a bus does not depend on it).
fn dirty_on_path(requester: NodeId, home: NodeId, dirty: NodeId, nodes: usize) -> bool {
    if home == requester || dirty == home {
        return false;
    }
    requester.hops_to(dirty, nodes) < requester.hops_to(home, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringsim_trace::WorkloadSpec;

    fn run(nodes: usize, refs: u64, mips: u64) -> SimReport {
        let cfg = BusSystemConfig::bus_100mhz(nodes).with_mips(mips);
        let w = Workload::new(WorkloadSpec::demo(nodes).with_refs(refs)).unwrap();
        BusSystem::new(cfg, w).unwrap().run()
    }

    #[test]
    fn runs_to_completion() {
        let r = run(4, 3_000, 50);
        assert!(r.proc_util > 0.0 && r.proc_util <= 1.0);
        assert!(r.ring_util > 0.0 && r.ring_util <= 1.0);
        assert!(r.miss_latency.count() > 0);
        assert_eq!(r.events.data_refs(), 4 * 3_000);
    }

    #[test]
    fn miss_latency_has_memory_floor() {
        let r = run(4, 2_000, 50);
        assert!(r.miss_latency.min().unwrap_or(0.0) >= 139.0);
    }

    #[test]
    fn bus_saturates_with_fast_processors() {
        let slow = run(8, 2_500, 50);
        let fast = run(8, 2_500, 500);
        assert!(fast.ring_util > slow.ring_util);
        assert!(fast.proc_util < slow.proc_util);
    }

    #[test]
    fn deterministic() {
        let a = run(4, 2_000, 100);
        let b = run(4, 2_000, 100);
        assert_eq!(a.sim_end, b.sim_end);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn address_and_data_utilisation_sum_to_total() {
        let r = run(4, 2_000, 100);
        assert!((r.probe_util + r.block_util - r.ring_util).abs() < 1e-9);
    }

    fn run_proto(p: BusProtocol, nodes: usize, refs: u64, mips: u64) -> SimReport {
        let cfg = BusSystemConfig::bus_100mhz(nodes).with_mips(mips).with_protocol(p);
        let w = Workload::new(WorkloadSpec::demo(nodes).with_refs(refs)).unwrap();
        BusSystem::new(cfg, w).unwrap().run()
    }

    fn upgrades(r: &SimReport) -> u64 {
        r.events.upgrade_nosharers_local
            + r.events.upgrade_nosharers_remote
            + r.events.upgrade_sharers_local
            + r.events.upgrade_sharers_remote
    }

    #[test]
    fn mesi_silent_promotion_cuts_upgrade_transactions() {
        let msi = run_proto(BusProtocol::Msi, 4, 3_000, 100);
        let mesi = run_proto(BusProtocol::Mesi, 4, 3_000, 100);
        assert_eq!(mesi.protocol, "bus-mesi");
        assert_eq!(mesi.events.data_refs(), msi.events.data_refs());
        // Read-then-write on a sole copy fills clean-exclusive and
        // promotes silently instead of paying an invalidation txn.
        assert!(
            upgrades(&mesi) < upgrades(&msi),
            "mesi {} vs msi {}",
            upgrades(&mesi),
            upgrades(&msi)
        );
    }

    #[test]
    fn dragon_updates_instead_of_invalidating() {
        let msi = run_proto(BusProtocol::Msi, 4, 3_000, 100);
        let dragon = run_proto(BusProtocol::Dragon, 4, 3_000, 100);
        assert_eq!(dragon.protocol, "bus-dragon");
        assert_eq!(dragon.events.data_refs(), msi.events.data_refs());
        assert_eq!(dragon.events.invalidated_copies, 0);
        // Copies stay valid, so coherence (invalidation) misses vanish.
        assert!(
            dragon.miss_latency.count() < msi.miss_latency.count(),
            "dragon {} vs msi {}",
            dragon.miss_latency.count(),
            msi.miss_latency.count()
        );
    }

    #[test]
    fn protocol_variants_are_deterministic() {
        for p in [BusProtocol::Mesi, BusProtocol::Dragon] {
            let a = run_proto(p, 4, 2_000, 100);
            let b = run_proto(p, 4, 2_000, 100);
            assert_eq!(a.sim_end, b.sim_end, "{p:?}");
            assert_eq!(a.events, b.events, "{p:?}");
        }
    }

    #[test]
    fn rejects_mismatched_workload() {
        let cfg = BusSystemConfig::bus_50mhz(8);
        let w = Workload::new(WorkloadSpec::demo(4)).unwrap();
        assert!(BusSystem::new(cfg, w).is_err());
    }
}
