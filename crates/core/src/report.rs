use serde::{Deserialize, Serialize};

use ringsim_types::stats::{Histogram, RunningMean};
use ringsim_types::{CoherenceEvents, Time};

/// Mean latencies by transaction class (the requester's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassLatencies {
    /// Misses satisfied by the local memory bank (no interconnect).
    pub local: RunningMean,
    /// Misses served clean by a remote home.
    pub clean_remote: RunningMean,
    /// Misses served by a dirty cache.
    pub dirty: RunningMean,
    /// Upgrade (invalidation) transactions.
    pub upgrade: RunningMean,
}

/// Per-node summary in a [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Fraction of its measured window the processor spent executing.
    pub util: f64,
    /// Misses it suffered (measured window).
    pub misses: u64,
    /// Mean miss latency in nanoseconds.
    pub mean_miss_latency_ns: f64,
    /// Time the node finished its reference budget.
    pub finished_at: Time,
}

/// Results of one timed system simulation.
///
/// The latency and utilisation definitions follow the paper:
///
/// * **processor utilisation** — fraction of time the processor is busy
///   executing rather than waiting for misses or invalidations (footnote 2);
/// * **ring slot utilisation** — average fraction of occupied slots;
/// * **miss latency** — mean stall time of misses (upgrades reported
///   separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Protocol the system ran.
    pub protocol: String,
    /// Node count.
    pub nodes: usize,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// End of simulation (all nodes done).
    pub sim_end: Time,
    /// Mean processor utilisation over nodes, 0–1.
    pub proc_util: f64,
    /// Ring slot utilisation, 0–1 (all slot kinds).
    pub ring_util: f64,
    /// Probe-slot utilisation, 0–1.
    pub probe_util: f64,
    /// Block-slot utilisation, 0–1.
    pub block_util: f64,
    /// Mean miss latency (ns) over all misses.
    pub miss_latency: RunningMean,
    /// Miss-latency histogram (50 ns bins up to 4 µs + overflow).
    pub miss_histogram: Histogram,
    /// Mean upgrade (invalidation) latency (ns).
    pub upgrade_latency: RunningMean,
    /// Mean latency by transaction class.
    pub class_latencies: ClassLatencies,
    /// Coherence event counts, summed over nodes (measured window only).
    pub events: CoherenceEvents,
    /// Nacked-and-retried transactions (snooping) or home-queued requests
    /// (directory).
    pub retries: u64,
    /// Per-node summaries.
    pub per_node: Vec<NodeSummary>,
}

impl SimReport {
    /// Directory miss-class breakdown in percent — Figure 5's three bars:
    /// (1-cycle clean, 1-cycle dirty, 2-cycle).
    #[must_use]
    pub fn fig5_percentages(&self) -> (f64, f64, f64) {
        let c1 = self.events.fig5_one_cycle_clean() as f64;
        let d1 = self.events.fig5_one_cycle_dirty() as f64;
        let c2 = self.events.fig5_two_cycle() as f64;
        let total = c1 + d1 + c2;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (100.0 * c1 / total, 100.0 * d1 / total, 100.0 * c2 / total)
        }
    }

    /// Mean miss latency in nanoseconds (0 when no misses).
    #[must_use]
    pub fn miss_latency_ns(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// Approximate miss-latency percentile in nanoseconds (upper bin edge).
    #[must_use]
    pub fn miss_latency_percentile(&self, q: f64) -> Option<f64> {
        self.miss_histogram.quantile(q)
    }

    /// Mean latency over misses *and* upgrades, weighted by count.
    #[must_use]
    pub fn stall_latency_ns(&self) -> f64 {
        let mut all = self.miss_latency;
        all.merge(&self.upgrade_latency);
        all.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_percentages_sum_to_100() {
        let events = CoherenceEvents {
            read_clean_remote: 60,
            read_dirty_1: 25,
            read_dirty_2: 15,
            ..CoherenceEvents::default()
        };
        let r = SimReport {
            protocol: "directory".into(),
            nodes: 8,
            proc_cycle: Time::from_ns(20),
            sim_end: Time::from_us(1),
            proc_util: 0.5,
            ring_util: 0.1,
            probe_util: 0.1,
            block_util: 0.1,
            miss_latency: RunningMean::default(),
            miss_histogram: Histogram::new(50.0, 80),
            upgrade_latency: RunningMean::default(),
            class_latencies: ClassLatencies::default(),
            events,
            retries: 0,
            per_node: vec![],
        };
        let (a, b, c) = r.fig5_percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        assert!((a - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stall_latency_merges() {
        let mut miss = RunningMean::default();
        miss.push(300.0);
        let mut upg = RunningMean::default();
        upg.push(100.0);
        let r = SimReport {
            protocol: "snooping".into(),
            nodes: 8,
            proc_cycle: Time::from_ns(20),
            sim_end: Time::from_us(1),
            proc_util: 0.5,
            ring_util: 0.1,
            probe_util: 0.1,
            block_util: 0.1,
            miss_latency: miss,
            miss_histogram: Histogram::new(50.0, 80),
            upgrade_latency: upg,
            class_latencies: ClassLatencies::default(),
            events: CoherenceEvents::default(),
            retries: 0,
            per_node: vec![],
        };
        assert!((r.stall_latency_ns() - 200.0).abs() < 1e-9);
        assert!((r.miss_latency_ns() - 300.0).abs() < 1e-9);
    }
}
