use serde::{Deserialize, Serialize};

use ringsim_obs::{LatencyHistogram, MetricsSummary};
use ringsim_types::stats::RunningMean;
use ringsim_types::{CoherenceEvents, Time};

/// Latency distributions by transaction class (the requester's view).
///
/// Each class is a full log2-bucketed [`LatencyHistogram`], so both the
/// legacy means *and* percentiles come from the same accumulator, and
/// sweep shards merge deterministically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassLatencies {
    /// Misses satisfied by the local memory bank (no interconnect).
    pub local: LatencyHistogram,
    /// Misses served clean by a remote home.
    pub clean_remote: LatencyHistogram,
    /// Misses served by a dirty cache.
    pub dirty: LatencyHistogram,
    /// Upgrade (invalidation) transactions.
    pub upgrade: LatencyHistogram,
}

/// Per-node summary in a [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Fraction of its measured window the processor spent executing.
    pub util: f64,
    /// Misses it suffered (measured window).
    pub misses: u64,
    /// Mean miss latency in nanoseconds.
    pub mean_miss_latency_ns: f64,
    /// 95th-percentile miss latency in nanoseconds (histogram upper edge).
    pub p95_miss_latency_ns: f64,
    /// Time the node finished its reference budget.
    pub finished_at: Time,
}

/// One node's raw measurements, as handed to [`summarize_nodes`] by each
/// interconnect simulator (they used to hand-assemble identical
/// [`NodeSummary`] rows separately).
#[derive(Debug, Clone)]
pub struct NodeMeasure<'a> {
    /// When the node finished its reference budget.
    pub finished_at: Time,
    /// Start of its measured (post-warmup) window.
    pub measure_start: Time,
    /// Busy (executing) time inside the measured window.
    pub busy: Time,
    /// Misses inside the measured window.
    pub misses: u64,
    /// Its miss-latency distribution.
    pub miss_lat: &'a LatencyHistogram,
}

/// Builds the per-node rows, the mean processor utilisation, and the
/// overall simulation end from raw per-node measurements. The single code
/// path behind every simulator's report *and* the obs exporters.
pub fn summarize_nodes<'a>(
    measures: impl IntoIterator<Item = NodeMeasure<'a>>,
) -> (Vec<NodeSummary>, f64, Time) {
    let mut per_node = Vec::new();
    let mut sim_end = Time::ZERO;
    for m in measures {
        sim_end = sim_end.max(m.finished_at);
        let window = m.finished_at.saturating_sub(m.measure_start);
        let util =
            if window.is_zero() { 0.0 } else { m.busy.as_ps() as f64 / window.as_ps() as f64 };
        per_node.push(NodeSummary {
            util: util.min(1.0),
            misses: m.misses,
            mean_miss_latency_ns: m.miss_lat.mean(),
            p95_miss_latency_ns: m.miss_lat.p95(),
            finished_at: m.finished_at,
        });
    }
    let proc_util = per_node.iter().map(|n| n.util).sum::<f64>() / per_node.len().max(1) as f64;
    (per_node, proc_util, sim_end)
}

/// Results of one timed system simulation.
///
/// The latency and utilisation definitions follow the paper:
///
/// * **processor utilisation** — fraction of time the processor is busy
///   executing rather than waiting for misses or invalidations (footnote 2);
/// * **ring slot utilisation** — average fraction of occupied slots;
/// * **miss latency** — mean stall time of misses (upgrades reported
///   separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Protocol the system ran.
    pub protocol: String,
    /// Node count.
    pub nodes: usize,
    /// Processor cycle time.
    pub proc_cycle: Time,
    /// End of simulation (all nodes done).
    pub sim_end: Time,
    /// Mean processor utilisation over nodes, 0–1.
    pub proc_util: f64,
    /// Ring slot utilisation, 0–1 (all slot kinds).
    pub ring_util: f64,
    /// Probe-slot utilisation, 0–1.
    pub probe_util: f64,
    /// Block-slot utilisation, 0–1.
    pub block_util: f64,
    /// Mean miss latency (ns) over all misses (exact, unrounded sums).
    pub miss_latency: RunningMean,
    /// Miss-latency distribution (log2 buckets; p50/p95/p99 and merge).
    pub miss_histogram: LatencyHistogram,
    /// Mean upgrade (invalidation) latency (ns).
    pub upgrade_latency: RunningMean,
    /// Latency distribution by transaction class.
    pub class_latencies: ClassLatencies,
    /// Coherence event counts, summed over nodes (measured window only).
    pub events: CoherenceEvents,
    /// Nacked-and-retried transactions (snooping) or home-queued requests
    /// (directory).
    pub retries: u64,
    /// Per-node summaries.
    pub per_node: Vec<NodeSummary>,
}

impl SimReport {
    /// Directory miss-class breakdown in percent — Figure 5's three bars:
    /// (1-cycle clean, 1-cycle dirty, 2-cycle).
    #[must_use]
    pub fn fig5_percentages(&self) -> (f64, f64, f64) {
        let c1 = self.events.fig5_one_cycle_clean() as f64;
        let d1 = self.events.fig5_one_cycle_dirty() as f64;
        let c2 = self.events.fig5_two_cycle() as f64;
        let total = c1 + d1 + c2;
        if total == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (100.0 * c1 / total, 100.0 * d1 / total, 100.0 * c2 / total)
        }
    }

    /// Mean miss latency in nanoseconds (0 when no misses).
    #[must_use]
    pub fn miss_latency_ns(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// Miss-latency percentile in nanoseconds, resolved to the upper edge
    /// of the containing log2 bucket; `None` when no misses were recorded.
    #[must_use]
    pub fn miss_latency_percentile(&self, q: f64) -> Option<f64> {
        (self.miss_histogram.count() > 0).then(|| self.miss_histogram.quantile(q))
    }

    /// Mean latency over misses *and* upgrades, weighted by count.
    #[must_use]
    pub fn stall_latency_ns(&self) -> f64 {
        let mut all = self.miss_latency;
        all.merge(&self.upgrade_latency);
        all.mean()
    }

    /// This run's per-class digest for the obs exporters / metrics sink.
    #[must_use]
    pub fn metrics_summary(&self) -> MetricsSummary {
        MetricsSummary {
            runs: 1,
            miss: self.miss_histogram.clone(),
            upgrade: self.class_latencies.upgrade.clone(),
            local: self.class_latencies.local.clone(),
            clean_remote: self.class_latencies.clean_remote.clone(),
            dirty: self.class_latencies.dirty.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SimReport {
        SimReport {
            protocol: "directory".into(),
            nodes: 8,
            proc_cycle: Time::from_ns(20),
            sim_end: Time::from_us(1),
            proc_util: 0.5,
            ring_util: 0.1,
            probe_util: 0.1,
            block_util: 0.1,
            miss_latency: RunningMean::default(),
            miss_histogram: LatencyHistogram::new(),
            upgrade_latency: RunningMean::default(),
            class_latencies: ClassLatencies::default(),
            events: CoherenceEvents::default(),
            retries: 0,
            per_node: vec![],
        }
    }

    #[test]
    fn fig5_percentages_sum_to_100() {
        let events = CoherenceEvents {
            read_clean_remote: 60,
            read_dirty_1: 25,
            read_dirty_2: 15,
            ..CoherenceEvents::default()
        };
        let r = SimReport { events, ..empty_report() };
        let (a, b, c) = r.fig5_percentages();
        assert!((a + b + c - 100.0).abs() < 1e-9);
        assert!((a - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stall_latency_merges() {
        let mut miss = RunningMean::default();
        miss.push(300.0);
        let mut upg = RunningMean::default();
        upg.push(100.0);
        let r = SimReport {
            protocol: "snooping".into(),
            miss_latency: miss,
            upgrade_latency: upg,
            ..empty_report()
        };
        assert!((r.stall_latency_ns() - 200.0).abs() < 1e-9);
        assert!((r.miss_latency_ns() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_pinned_against_hand_computed_distribution() {
        // Hand-computed distribution: 20 samples.
        //   12 × 100 ns  → bucket [64, 128)    (upper edge 128)
        //    6 × 700 ns  → bucket [512, 1024)  (upper edge 1024)
        //    2 × 3000 ns → bucket [2048, 4096) (upper edge 4096)
        //
        // p50 rank = ceil(0.5·20) = 10 → 10th sample is a 100 ns one
        //   → upper edge 128 ns.
        // p95 rank = ceil(0.95·20) = 19 → 19th sample is a 3000 ns one
        //   → upper edge 4096 ns.
        let mut r = empty_report();
        for _ in 0..12 {
            r.miss_histogram.record(100.0);
        }
        for _ in 0..6 {
            r.miss_histogram.record(700.0);
        }
        for _ in 0..2 {
            r.miss_histogram.record(3000.0);
        }
        assert_eq!(r.miss_latency_percentile(0.5), Some(128.0));
        assert_eq!(r.miss_latency_percentile(0.95), Some(4096.0));
        // And the boundary just below p95's rank: ceil(0.90·20) = 18 → a
        // 700 ns sample → 1024 ns.
        assert_eq!(r.miss_latency_percentile(0.90), Some(1024.0));
        // No samples → no percentile.
        assert_eq!(empty_report().miss_latency_percentile(0.5), None);
    }

    #[test]
    fn summarize_nodes_single_code_path() {
        let mut h = LatencyHistogram::new();
        h.record(100.0);
        h.record(300.0);
        let empty = LatencyHistogram::new();
        let measures = vec![
            NodeMeasure {
                finished_at: Time::from_us(2),
                measure_start: Time::from_us(1),
                busy: Time::from_ns(250),
                misses: 2,
                miss_lat: &h,
            },
            NodeMeasure {
                finished_at: Time::from_us(3),
                measure_start: Time::from_us(1),
                busy: Time::from_us(1),
                misses: 0,
                miss_lat: &empty,
            },
        ];
        let (rows, proc_util, sim_end) = summarize_nodes(measures);
        assert_eq!(rows.len(), 2);
        assert_eq!(sim_end, Time::from_us(3));
        assert!((rows[0].util - 0.25).abs() < 1e-12);
        assert!((rows[1].util - 0.5).abs() < 1e-12);
        assert!((proc_util - 0.375).abs() < 1e-12);
        assert_eq!(rows[0].mean_miss_latency_ns, 200.0);
        assert_eq!(rows[0].p95_miss_latency_ns, 512.0);
        assert_eq!(rows[1].misses, 0);
    }
}
