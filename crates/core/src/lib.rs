//! The assembled timed simulators: processors + caches + coherence protocol
//! + interconnect, driven by synthetic workloads.
//!
//! This crate is the paper's primary artifact: the evaluation machinery for
//! cache-coherent slotted-ring multiprocessors. It contains
//!
//! * [`SystemConfig`] — one struct describing an entire ring system,
//! * [`RingSystem`] — the cycle-stepped slotted-ring simulator running
//!   either the snooping or the full-map directory protocol,
//! * [`SimReport`] — processor utilisation, ring utilisation and miss
//!   latencies in the paper's terms.
//!
//! The split-transaction-bus baseline lives in `ringsim-bus` and its system
//! simulator is [`BusSystem`]; the analytical models that extrapolate
//! simulator outputs across the design space live in `ringsim-analytic`.
//!
//! # Examples
//!
//! ```
//! use ringsim_core::{RingSystem, SystemConfig};
//! use ringsim_proto::ProtocolKind;
//! use ringsim_trace::{Workload, WorkloadSpec};
//!
//! let cfg = SystemConfig::ring_500mhz(ProtocolKind::Directory, 4);
//! let workload = Workload::new(WorkloadSpec::demo(4).with_refs(2_000)).unwrap();
//! let report = RingSystem::new(cfg, workload).unwrap().run();
//! println!("processor utilisation: {:.1}%", 100.0 * report.proc_util);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_net;
mod bus_system;
mod collections;
mod config;
mod engine;
mod hier_net;
mod report;
mod ring_system;
mod sanitize;
mod sci_system;
mod simulator;

pub use access_net::{AccessNetConfig, AccessNetReport, InsertionNetSim, SlottedNetSim};
pub use bus_system::{BusProtocol, BusSystem, BusSystemConfig};
pub use collections::{FnvBuildHasher, FnvHasher, FnvMap, RingBuf, RingBufIter, Slab};
pub use config::{SystemConfig, SystemConfigBuilder};
pub use engine::EventQueue;
pub use hier_net::{HierNetConfig, HierNetReport, HierNetSim};
pub use report::{summarize_nodes, ClassLatencies, NodeMeasure, NodeSummary, SimReport};
pub use ring_system::RingSystem;
pub use sanitize::{sanitize_enabled, set_sanitize_mode, SanitizeMode};
pub use sci_system::{SciRingSystem, SciSystemConfig};
#[allow(deprecated)]
pub use simulator::run_sim;
pub use simulator::{
    HierTopology, RunOptions, RunOutcome, SimKind, SimKindError, SimSpec, Simulator,
};
