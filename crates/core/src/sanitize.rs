//! Runtime coherence sanitizer.
//!
//! A lightweight always-compiled hook layer that re-evaluates the shared
//! [`ringsim_proto::invariants`] at transaction-retire boundaries of the
//! timed simulators. The checks are sound at any point of a run (they use
//! the same transient carve-outs as the model checker in `ringsim-check`),
//! so a violation is a genuine protocol bug, reported by panicking with the
//! offending block and the per-node line states.
//!
//! The sanitizer never changes simulation behaviour or results — it only
//! observes — so sanitized runs produce byte-identical artifacts.
//!
//! Cost is O(nodes) per retired transaction. The default [`SanitizeMode::Auto`]
//! enables it in debug builds (including `cargo test`) and disables it in
//! release runs; `--sanitize` on the CLI forces it on.

use std::sync::atomic::{AtomicU8, Ordering};

use ringsim_cache::LineState;
use ringsim_proto::invariants;
use ringsim_types::BlockAddr;

/// When the runtime coherence sanitizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// On in debug builds and tests, off in release builds (the default).
    #[default]
    Auto,
    /// Always on, release builds included (`--sanitize`).
    On,
    /// Always off.
    Off,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide sanitizer mode.
pub fn set_sanitize_mode(mode: SanitizeMode) {
    let v = match mode {
        SanitizeMode::Auto => 0,
        SanitizeMode::On => 1,
        SanitizeMode::Off => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Whether retire-boundary checks currently run.
pub fn sanitize_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => cfg!(debug_assertions),
    }
}

fn fail(block: BlockAddr, states: &[LineState], err: &str) -> ! {
    let lines: Vec<String> =
        states.iter().enumerate().map(|(i, s)| format!("P{i}:{s:?}")).collect();
    panic!("coherence sanitizer: {block}: {err} [{}]", lines.join(" "));
}

/// Checks SWMR over one block's line states. `conflicting[i]` marks nodes
/// whose own transaction on this block is still in flight (they may hold a
/// transiently stale copy).
pub(crate) fn check_swmr(block: BlockAddr, states: &[LineState], conflicting: &[bool]) {
    if let Err(e) = invariants::check_swmr(states, conflicting) {
        fail(block, states, &e.to_string());
    }
}

/// Checks that a write-exclusive copy is backed by the home's dirty bit
/// (snooping mode only; the bit arbitrates who supplies data).
pub(crate) fn check_we_implies_dirty(block: BlockAddr, states: &[LineState], dirty: bool) {
    if let Err(e) = invariants::check_we_implies_dirty(states, dirty) {
        fail(block, states, &e.to_string());
    }
}

/// Checks a conservation law of the interconnect simulators: retired work
/// must never exceed injected work.
pub(crate) fn check_conservation(what: &str, injected: u64, retired: u64) {
    if retired > injected {
        panic!("sanitizer: {what}: {retired} transactions retired but only {injected} injected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_follows_build_profile() {
        set_sanitize_mode(SanitizeMode::Auto);
        assert_eq!(sanitize_enabled(), cfg!(debug_assertions));
        set_sanitize_mode(SanitizeMode::On);
        assert!(sanitize_enabled());
        set_sanitize_mode(SanitizeMode::Off);
        assert!(!sanitize_enabled());
        set_sanitize_mode(SanitizeMode::Auto);
    }

    #[test]
    #[should_panic(expected = "coherence sanitizer")]
    fn swmr_violation_panics() {
        check_swmr(BlockAddr::new(0), &[LineState::We, LineState::Rs], &[false, false]);
    }

    #[test]
    #[should_panic(expected = "sanitizer")]
    fn conservation_violation_panics() {
        check_conservation("test-net", 3, 4);
    }
}
