//! Ring access-control comparison: **slotted** versus **register-insertion**
//! rings (paper §2).
//!
//! The paper chooses the slotted ring but leaves the performance question
//! open: *"Which one of slotted or register insertion rings offers the best
//! performance is not clear. Intuitively, under light loads, the register
//! insertion ring has a faster access time since a message does not wait
//! for a proper slot to pass by. Under medium to heavy loads, the
//! simplicity of enforcing fairness on the slotted ring may yield better
//! performance. The delay of transmitting a message in the register
//! insertion ring can vary significantly depending on the activity of other
//! nodes in the message path."*
//!
//! This module tests that conjecture with two message-level closed-loop
//! simulators sharing one workload shape (think → request probe → home
//! access → block reply → think):
//!
//! * [`SlottedNetSim`] — a flat slotted ring built on the real
//!   [`SlotRing`] machinery (frames, parity, anti-starvation);
//! * [`InsertionNetSim`] — a register-insertion ring: one flit per link per
//!   cycle, cut-through forwarding, a bypass FIFO that buffers ring traffic
//!   while a node transmits, and the SCI rule that a node may only insert
//!   its own message while its bypass FIFO is empty.
//!
//! Message sizes match the slotted ring's slots (probe = 2 flits, block =
//! 6 flits for 32-bit links) so the raw bandwidth demand is identical; only
//! the access-control discipline differs.

use ringsim_proto::{MsgClass, MsgKind, RingMessage};
use ringsim_ring::{RingConfig, SlotKind, SlotRing};
use ringsim_types::rng::Xoshiro256;
use ringsim_types::stats::RunningMean;
use ringsim_types::{BlockAddr, ConfigError, NodeId, Time};

use crate::collections::RingBuf;

/// Shared configuration of the two access-control simulators.
#[derive(Debug, Clone, Copy)]
pub struct AccessNetConfig {
    /// Nodes on the ring.
    pub nodes: usize,
    /// Mean think time between a node's transactions (the load knob).
    pub think_time: Time,
    /// Memory access time at the home.
    pub mem_latency: Time,
    /// Transactions per node.
    pub txns_per_node: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl AccessNetConfig {
    /// A baseline configuration.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            think_time: Time::from_ns(500),
            mem_latency: Time::from_ns(140),
            txns_per_node: 300,
            seed: 0xACCE,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 2 || self.nodes > 64 {
            return Err(ConfigError::new("nodes", "need 2..=64 nodes"));
        }
        if self.think_time.is_zero() {
            return Err(ConfigError::new("think_time", "must be non-zero"));
        }
        if self.txns_per_node == 0 {
            return Err(ConfigError::new("txns_per_node", "must be non-zero"));
        }
        Ok(())
    }
}

/// Results of an access-control run.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessNetReport {
    /// Time from "message ready" to "message fully on the ring" — the
    /// access-delay metric the paper's §2 argument is about.
    pub access_delay: RunningMean,
    /// End-to-end transaction latency.
    pub latency: RunningMean,
    /// Link/slot utilisation.
    pub util: f64,
    /// Completed transactions.
    pub completed: u64,
    /// Simulated time.
    pub sim_end: Time,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Thinking { until: Time },
    Waiting,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct OutMsg {
    msg: RingMessage,
    ready_at: Time,
}

#[derive(Debug)]
struct LoopNode {
    phase: Phase,
    issued: u64,
    started: Time,
    out_q: RingBuf<OutMsg>,
    rng: Xoshiro256,
}

fn make_nodes(cfg: &AccessNetConfig) -> Vec<LoopNode> {
    let mut root = Xoshiro256::seed_from_u64(cfg.seed);
    (0..cfg.nodes)
        .map(|i| LoopNode {
            phase: Phase::Thinking { until: Time::from_ps(1 + i as u64 * 131) },
            issued: 0,
            started: Time::ZERO,
            out_q: RingBuf::new(),
            rng: root.fork(i as u64),
        })
        .collect()
}

/// Node behaviour shared by both simulators: think, then issue a probe to a
/// uniformly random *other* node. Returns how many nodes retired (entered
/// [`Phase::Done`]) this call, so callers can keep a running total instead
/// of scanning every node every cycle.
fn step_think(nodes: &mut [LoopNode], cfg: &AccessNetConfig, now: Time) -> usize {
    let mut newly_done = 0;
    for (i, node) in nodes.iter_mut().enumerate() {
        if let Phase::Thinking { until } = node.phase {
            if until <= now {
                if node.issued == cfg.txns_per_node {
                    node.phase = Phase::Done;
                    newly_done += 1;
                    continue;
                }
                node.issued += 1;
                node.started = now;
                let other = {
                    let pick = node.rng.next_below(cfg.nodes as u64 - 1) as usize;
                    if pick >= i {
                        pick + 1
                    } else {
                        pick
                    }
                };
                let probe = RingMessage::for_requester(
                    MsgKind::DirRead,
                    BlockAddr::new(node.issued),
                    NodeId::new(i),
                    NodeId::new(other),
                    NodeId::new(i),
                );
                node.out_q.push_back(OutMsg { msg: probe, ready_at: now });
                node.phase = Phase::Waiting;
            }
        }
    }
    newly_done
}

fn complete(
    nodes: &mut [LoopNode],
    latency: &mut RunningMean,
    cfg: &AccessNetConfig,
    i: usize,
    now: Time,
) {
    let node = &mut nodes[i];
    debug_assert_eq!(node.phase, Phase::Waiting);
    latency.push_time_ns(now.saturating_sub(node.started));
    let think = (node.rng.next_f64() * 2.0 * cfg.think_time.as_ns_f64()).max(0.1);
    node.phase = Phase::Thinking { until: now + Time::from_ns_f64(think) };
}

// --------------------------------------------------------------- slotted

/// The slotted-ring side of the comparison.
#[derive(Debug)]
pub struct SlottedNetSim {
    cfg: AccessNetConfig,
    ring: SlotRing<RingMessage>,
    nodes: Vec<LoopNode>,
}

impl SlottedNetSim {
    /// Builds the simulator on the paper's standard 500 MHz 32-bit ring.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: AccessNetConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let ring = SlotRing::new(RingConfig::standard_500mhz(cfg.nodes))?;
        let nodes = make_nodes(&cfg);
        Ok(Self { cfg, ring, nodes })
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics on a runaway simulation (internal bug guard).
    pub fn run(&mut self) -> AccessNetReport {
        let period = self.ring.config().clock_period;
        let mem_cycles = self.cfg.mem_latency.as_ps().div_ceil(period.as_ps());
        let mut access = RunningMean::default();
        let mut latency = RunningMean::default();
        let mut completed = 0u64;
        // (ready_cycle, node, reply message)
        let mut pending: Vec<(u64, usize, RingMessage)> = Vec::new();
        let mut cycle = 0u64;
        let mut done_nodes = 0usize;
        // `(position, slot)` header arrivals per ring phase — the inner
        // loop below visits only the nodes with an arrival this cycle.
        let sched = self.ring.layout().arrival_schedule();
        loop {
            let now = period * cycle;
            done_nodes += step_think(&mut self.nodes, &self.cfg, now);
            pending.retain(|&(ready, node, msg)| {
                if ready <= cycle {
                    self.nodes[node].out_q.push_back(OutMsg { msg, ready_at: period * ready });
                    false
                } else {
                    true
                }
            });
            let phase = (cycle % sched.len() as u64) as usize;
            for &(pos, slot) in &sched[phase] {
                let i = pos.index();
                if self.ring.peek(slot).is_some() {
                    let msg = *self.ring.peek(slot).expect("occupied");
                    if msg.dst == pos {
                        let m = self.ring.remove(slot, pos);
                        match m.kind {
                            MsgKind::DirRead => {
                                // Home: reply with a block after the access.
                                let reply = RingMessage {
                                    kind: MsgKind::BlockData,
                                    src: pos,
                                    dst: m.requester,
                                    ..m
                                };
                                pending.push((cycle + mem_cycles, i, reply));
                            }
                            MsgKind::BlockData => {
                                completed += 1;
                                complete(&mut self.nodes, &mut latency, &self.cfg, i, now);
                            }
                            _ => unreachable!("unexpected message kind"),
                        }
                    }
                } else if let Some(&out) = self.nodes[i].out_q.front() {
                    let kind = self.ring.kind_of(slot);
                    let ok = match (out.msg.class(), kind) {
                        (MsgClass::Probe, SlotKind::Block) => false,
                        (MsgClass::Probe, k) => k.parity().accepts(out.msg.block.is_even()),
                        (MsgClass::Block, SlotKind::Block) => true,
                        (MsgClass::Block, _) => false,
                    };
                    if ok && self.ring.try_insert(slot, pos, out.msg).is_ok() {
                        self.nodes[i].out_q.pop_front();
                        access.push_time_ns(now.saturating_sub(out.ready_at));
                    }
                }
            }
            self.ring.advance();
            cycle += 1;
            if done_nodes == self.nodes.len() {
                break;
            }
            assert!(cycle < 2_000_000_000, "slotted access simulation ran away");
        }
        AccessNetReport {
            access_delay: access,
            latency,
            util: self.ring.stats().slot_utilization(self.ring.layout().slot_count()),
            completed,
            sim_end: period * cycle,
        }
    }
}

// --------------------------------------------------- register insertion

/// One flit on a link: which message it belongs to and whether it is the
/// tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flit {
    msg: RingMessage,
    last: bool,
}

/// What a node's output port is currently committed to (messages must stay
/// contiguous on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutState {
    Idle,
    /// Forwarding a pass-through message arriving from upstream.
    Through {
        remaining: u32,
    },
    /// Draining the bypass FIFO or sending an own message.
    Sending {
        from_fifo: bool,
        remaining: u32,
    },
}

/// The register-insertion ring (SCI-style access control).
#[derive(Debug)]
pub struct InsertionNetSim {
    cfg: AccessNetConfig,
    nodes: Vec<LoopNode>,
    probe_flits: u32,
    block_flits: u32,
    period: Time,
}

impl InsertionNetSim {
    /// Builds the simulator with flit sizes matching the slotted ring's
    /// slots on 32-bit links (probe = 2 flits, block = 6 flits, 2 ns each).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(cfg: AccessNetConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let base = RingConfig::standard_500mhz(cfg.nodes);
        let nodes = make_nodes(&cfg);
        Ok(Self {
            cfg,
            nodes,
            probe_flits: base.probe_stages() as u32,
            block_flits: base.block_slot_stages() as u32,
            period: base.clock_period,
        })
    }

    fn flits_of(&self, msg: &RingMessage) -> u32 {
        match msg.class() {
            MsgClass::Probe => self.probe_flits,
            MsgClass::Block => self.block_flits,
        }
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics on a runaway simulation (internal bug guard).
    #[allow(clippy::too_many_lines)]
    pub fn run(&mut self) -> AccessNetReport {
        let n = self.cfg.nodes;
        // Each node keeps 3 pipeline stages like the slotted ring; model the
        // inter-node wire as a 3-deep shift register of flits.
        const STAGES: usize = 3;
        let mut wires: Vec<RingBuf<Option<Flit>>> =
            (0..n).map(|_| (0..STAGES).map(|_| None).collect()).collect();
        let mut fifos: Vec<RingBuf<Flit>> = (0..n).map(|_| RingBuf::new()).collect();
        let mut out_state = vec![OutState::Idle; n];
        // Progress of the message each node is currently emitting.
        let mut emitting: Vec<Option<(RingMessage, u32, Time)>> = vec![None; n];
        let mem_cycles = self.cfg.mem_latency.as_ps().div_ceil(self.period.as_ps());
        let mut pending: Vec<(u64, usize, RingMessage)> = Vec::new();
        let mut access = RunningMean::default();
        let mut latency = RunningMean::default();
        let mut completed = 0u64;
        let mut busy_flits = 0u64;
        let mut cycle = 0u64;
        let mut done_nodes = 0usize;
        loop {
            let now = self.period * cycle;
            done_nodes += step_think(&mut self.nodes, &self.cfg, now);
            pending.retain(|&(ready, node, msg)| {
                if ready <= cycle {
                    self.nodes[node].out_q.push_back(OutMsg { msg, ready_at: self.period * ready });
                    false
                } else {
                    true
                }
            });
            // One cycle: every node consumes the flit arriving on its input
            // wire (from upstream) and produces at most one flit on its
            // output wire.
            let mut arrivals: Vec<Option<Flit>> = Vec::with_capacity(n);
            for i in 0..n {
                // Input of node i is the wire from its upstream neighbour.
                let upstream = (i + n - 1) % n;
                arrivals.push(wires[upstream].pop_front().expect("wire stage"));
            }
            for i in 0..n {
                // 1. handle the arriving flit.
                if let Some(flit) = arrivals[i] {
                    if flit.msg.dst == NodeId::new(i) {
                        // Strip from the ring; deliver on the tail flit.
                        if flit.last {
                            match flit.msg.kind {
                                MsgKind::DirRead => {
                                    let reply = RingMessage {
                                        kind: MsgKind::BlockData,
                                        src: NodeId::new(i),
                                        dst: flit.msg.requester,
                                        ..flit.msg
                                    };
                                    pending.push((cycle + mem_cycles, i, reply));
                                }
                                MsgKind::BlockData => {
                                    completed += 1;
                                    complete(&mut self.nodes, &mut latency, &self.cfg, i, now);
                                }
                                _ => unreachable!("unexpected message kind"),
                            }
                        }
                    } else if out_state[i] == OutState::Idle && fifos[i].is_empty() {
                        // Cut through: forward immediately and stay locked
                        // to this message until its tail passes.
                        if !flit.last {
                            out_state[i] = OutState::Through { remaining: 0 };
                        }
                        wires[i].push_back(Some(flit));
                        busy_flits += 1;
                        continue;
                    } else if matches!(out_state[i], OutState::Through { .. }) {
                        // Continuation of the message we are forwarding.
                        wires[i].push_back(Some(flit));
                        busy_flits += 1;
                        if flit.last {
                            out_state[i] = OutState::Idle;
                        }
                        continue;
                    } else {
                        // We are busy sending: buffer the through-traffic.
                        fifos[i].push_back(flit);
                    }
                }
                // 2. choose what to emit this cycle.
                match out_state[i] {
                    OutState::Through { .. } => {
                        // The through message stalled upstream this cycle
                        // (no arriving flit): emit a bubble.
                        wires[i].push_back(None);
                    }
                    OutState::Sending { from_fifo, mut remaining } => {
                        if from_fifo {
                            if let Some(flit) = fifos[i].pop_front() {
                                let done = flit.last;
                                wires[i].push_back(Some(flit));
                                busy_flits += 1;
                                if done {
                                    out_state[i] = OutState::Idle;
                                }
                            } else {
                                wires[i].push_back(None);
                            }
                        } else {
                            let (msg, total, _) = emitting[i].expect("emitting");
                            remaining -= 1;
                            let last = remaining == 0;
                            wires[i].push_back(Some(Flit { msg, last }));
                            busy_flits += 1;
                            if last {
                                // Access delay was recorded at start.
                                emitting[i] = None;
                                out_state[i] = OutState::Idle;
                                let _ = total;
                            } else {
                                out_state[i] = OutState::Sending { from_fifo: false, remaining };
                            }
                        }
                    }
                    OutState::Idle => {
                        if let Some(head) = fifos[i].front().copied() {
                            // Drain the bypass FIFO first (ring traffic has
                            // priority; also the SCI anti-starvation rule:
                            // no own insertion while the FIFO is occupied).
                            fifos[i].pop_front();
                            let done = head.last;
                            wires[i].push_back(Some(head));
                            busy_flits += 1;
                            if !done {
                                out_state[i] = OutState::Sending { from_fifo: true, remaining: 0 };
                            }
                        } else if let Some(&out) = self.nodes[i].out_q.front() {
                            // Insert an own message.
                            self.nodes[i].out_q.pop_front();
                            access.push_time_ns(now.saturating_sub(out.ready_at));
                            let flits = self.flits_of(&out.msg);
                            let last = flits == 1;
                            wires[i].push_back(Some(Flit { msg: out.msg, last }));
                            busy_flits += 1;
                            if last {
                                out_state[i] = OutState::Idle;
                            } else {
                                emitting[i] = Some((out.msg, flits, out.ready_at));
                                out_state[i] =
                                    OutState::Sending { from_fifo: false, remaining: flits - 1 };
                            }
                        } else {
                            wires[i].push_back(None);
                        }
                    }
                }
            }
            cycle += 1;
            if done_nodes == self.nodes.len() {
                break;
            }
            assert!(cycle < 2_000_000_000, "insertion-ring simulation ran away");
        }
        let total_link_cycles = cycle * (n as u64);
        AccessNetReport {
            access_delay: access,
            latency,
            util: if total_link_cycles == 0 {
                0.0
            } else {
                busy_flits as f64 / total_link_cycles as f64
            },
            completed,
            sim_end: self.period * cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pair(nodes: usize, think_ns: u64, txns: u64) -> (AccessNetReport, AccessNetReport) {
        let mut cfg = AccessNetConfig::new(nodes);
        cfg.think_time = Time::from_ns(think_ns);
        cfg.txns_per_node = txns;
        let slotted = SlottedNetSim::new(cfg).unwrap().run();
        let insertion = InsertionNetSim::new(cfg).unwrap().run();
        (slotted, insertion)
    }

    #[test]
    fn both_complete_all_transactions() {
        let (s, r) = run_pair(8, 500, 100);
        assert_eq!(s.completed, 800);
        assert_eq!(r.completed, 800);
    }

    #[test]
    fn light_load_favours_register_insertion_access() {
        // Paper §2's intuition: with an idle ring, insertion is immediate
        // while the slotted ring waits for a matching slot to pass.
        let (s, r) = run_pair(8, 3_000, 80);
        assert!(
            r.access_delay.mean() < s.access_delay.mean(),
            "insertion {} !< slotted {}",
            r.access_delay.mean(),
            s.access_delay.mean()
        );
        assert!(r.access_delay.mean() < 2.0, "insertion should be near-immediate");
    }

    #[test]
    fn heavy_load_narrows_or_reverses_the_gap() {
        // Under load, insertion-ring senders must drain their bypass FIFOs;
        // access is no longer free and varies with upstream activity.
        let (_, light) = run_pair(8, 3_000, 80);
        let (_, heavy) = run_pair(8, 60, 80);
        assert!(
            heavy.access_delay.mean() > light.access_delay.mean() + 1.0,
            "insertion access should degrade with load: {} vs {}",
            heavy.access_delay.mean(),
            light.access_delay.mean()
        );
    }

    #[test]
    fn latencies_have_sane_floors() {
        let (s, r) = run_pair(8, 2_000, 60);
        // Both include at least memory (140 ns) plus some travel.
        assert!(s.latency.min().unwrap_or(0.0) >= 150.0);
        assert!(r.latency.min().unwrap_or(0.0) >= 150.0);
    }

    #[test]
    fn deterministic() {
        let (a1, b1) = run_pair(6, 400, 50);
        let (a2, b2) = run_pair(6, 400, 50);
        assert_eq!(a1.latency, a2.latency);
        assert_eq!(b1.latency, b2.latency);
    }
}
