use serde::{Deserialize, Serialize};

use ringsim_cache::CacheConfig;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_types::{ConfigError, Time};

/// Configuration of a complete ring-based system: interconnect, caches,
/// protocol and timing constants.
///
/// # Examples
///
/// ```
/// use ringsim_core::SystemConfig;
/// use ringsim_proto::ProtocolKind;
/// use ringsim_types::Time;
///
/// let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8)
///     .with_proc_cycle(Time::from_ns(20)); // 50 MIPS processors
/// cfg.validate().unwrap();
/// assert_eq!(cfg.mem_latency, Time::from_ns(140));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Coherence protocol run on the ring.
    pub protocol: ProtocolKind,
    /// Slotted-ring parameters.
    pub ring: RingConfig,
    /// Per-processor cache geometry.
    pub cache: CacheConfig,
    /// Processor cycle time (1–20 ns in the paper's sweeps).
    pub proc_cycle: Time,
    /// Local memory bank access time (fixed at 140 ns in the paper).
    pub mem_latency: Time,
    /// Time for a dirty cache to supply a block (the paper folds this into
    /// the same 140 ns bank time).
    pub supply_latency: Time,
    /// Cycles a requester waits before re-issuing a nacked snooping probe,
    /// in ring cycles.
    pub retry_backoff_cycles: u64,
    /// When `true`, each home's memory bank serialises accesses (queueing
    /// on top of the 140 ns service time). The paper assumes contention-free
    /// banks ("fixed at 140 nsec"); this knob ablates that assumption.
    pub model_bank_contention: bool,
}

impl SystemConfig {
    /// Starts a [`SystemConfigBuilder`] seeded with the paper's 500 MHz
    /// baseline; override only the fields that differ and call
    /// [`build`](SystemConfigBuilder::build) to validate.
    ///
    /// # Examples
    ///
    /// ```
    /// use ringsim_core::SystemConfig;
    /// use ringsim_proto::ProtocolKind;
    ///
    /// let cfg = SystemConfig::builder(ProtocolKind::Directory, 16)
    ///     .mips(100)
    ///     .model_bank_contention(true)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.nodes(), 16);
    /// ```
    #[must_use]
    pub fn builder(protocol: ProtocolKind, nodes: usize) -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: Self::ring_500mhz(protocol, nodes) }
    }

    /// The paper's baseline: 500 MHz 32-bit ring, 128 KB caches, 140 ns
    /// memory, 50 MIPS (20 ns) processors.
    ///
    /// Positional constructor kept for backwards compatibility; prefer
    /// [`SystemConfig::builder`], which validates at `build()`, when
    /// overriding more than the protocol and node count.
    #[must_use]
    pub fn ring_500mhz(protocol: ProtocolKind, nodes: usize) -> Self {
        Self {
            protocol,
            ring: RingConfig::standard_500mhz(nodes),
            cache: CacheConfig::paper_default(),
            proc_cycle: Time::from_ns(20),
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
            retry_backoff_cycles: 40,
            model_bank_contention: false,
        }
    }

    /// Same system on a 250 MHz ring.
    ///
    /// Positional constructor kept for backwards compatibility; prefer
    /// [`SystemConfig::builder`] with
    /// [`ring_250mhz`](SystemConfigBuilder::ring_250mhz) for new code.
    #[must_use]
    pub fn ring_250mhz(protocol: ProtocolKind, nodes: usize) -> Self {
        Self { ring: RingConfig::standard_250mhz(nodes), ..Self::ring_500mhz(protocol, nodes) }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.ring.nodes
    }

    /// Builder-style processor cycle override.
    #[must_use]
    pub fn with_proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.proc_cycle = proc_cycle;
        self
    }

    /// Builder-style MIPS override (`mips` million single-cycle
    /// instructions per second).
    ///
    /// # Panics
    ///
    /// Panics if `mips` is zero.
    #[must_use]
    pub fn with_mips(self, mips: u64) -> Self {
        assert!(mips > 0, "mips must be positive");
        self.with_proc_cycle(Time::from_ps(1_000_000 / mips))
    }

    /// Validates all parts.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in the ring, cache or timing
    /// parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.ring.validate()?;
        self.cache.validate()?;
        if self.ring.nodes > 64 {
            return Err(ConfigError::new("ring.nodes", "at most 64 nodes supported"));
        }
        if self.proc_cycle.is_zero() {
            return Err(ConfigError::new("proc_cycle", "must be non-zero"));
        }
        if !matches!(
            self.protocol,
            ringsim_proto::ProtocolKind::Snooping | ringsim_proto::ProtocolKind::Directory
        ) {
            return Err(ConfigError::new(
                "protocol",
                "the slotted-ring simulator runs snooping or directory; \
                 SCI runs on SciRingSystem, MESI/Dragon on BusSystem",
            ));
        }
        if self.mem_latency.is_zero() {
            return Err(ConfigError::new("mem_latency", "must be non-zero"));
        }
        if self.supply_latency.is_zero() {
            return Err(ConfigError::new("supply_latency", "must be non-zero"));
        }
        if self.cache.block_bytes != self.ring.block_bytes {
            return Err(ConfigError::new(
                "cache.block_bytes",
                "must match ring.block_bytes (one block per block slot)",
            ));
        }
        Ok(())
    }
}

/// Builder for [`SystemConfig`], started by [`SystemConfig::builder`].
///
/// Every setter overrides one field of the 500 MHz paper baseline; nothing
/// is checked until [`build`](Self::build), which runs
/// [`SystemConfig::validate`] and surfaces the first offending field as a
/// [`ConfigError`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Replaces the whole ring configuration (node count included).
    #[must_use]
    pub fn ring(mut self, ring: RingConfig) -> Self {
        self.cfg.ring = ring;
        self
    }

    /// Swaps the interconnect for the 250 MHz ring, keeping the node count.
    #[must_use]
    pub fn ring_250mhz(mut self) -> Self {
        self.cfg.ring = RingConfig::standard_250mhz(self.cfg.ring.nodes);
        self
    }

    /// Replaces the per-processor cache geometry.
    #[must_use]
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = cache;
        self
    }

    /// Sets the processor cycle time.
    #[must_use]
    pub fn proc_cycle(mut self, proc_cycle: Time) -> Self {
        self.cfg.proc_cycle = proc_cycle;
        self
    }

    /// Sets the processor speed in MIPS (million single-cycle instructions
    /// per second). Zero is rejected at [`build`](Self::build), not here.
    #[must_use]
    pub fn mips(mut self, mips: u64) -> Self {
        self.cfg.proc_cycle = 1_000_000u64.checked_div(mips).map_or(Time::ZERO, Time::from_ps);
        self
    }

    /// Sets the memory bank access latency.
    #[must_use]
    pub fn mem_latency(mut self, mem_latency: Time) -> Self {
        self.cfg.mem_latency = mem_latency;
        self
    }

    /// Sets the dirty-cache supply latency.
    #[must_use]
    pub fn supply_latency(mut self, supply_latency: Time) -> Self {
        self.cfg.supply_latency = supply_latency;
        self
    }

    /// Sets the nack retry backoff, in ring cycles.
    #[must_use]
    pub fn retry_backoff_cycles(mut self, cycles: u64) -> Self {
        self.cfg.retry_backoff_cycles = cycles;
        self
    }

    /// Enables or disables memory-bank queueing.
    #[must_use]
    pub fn model_bank_contention(mut self, on: bool) -> Self {
        self.cfg.model_bank_contention = on;
        self
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`SystemConfig::validate`].
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        SystemConfig::ring_500mhz(ProtocolKind::Snooping, 16).validate().unwrap();
        SystemConfig::ring_250mhz(ProtocolKind::Directory, 8).validate().unwrap();
    }

    #[test]
    fn mips_conversion() {
        let cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8).with_mips(50);
        assert_eq!(cfg.proc_cycle, Time::from_ns(20));
        let cfg = cfg.with_mips(400);
        assert_eq!(cfg.proc_cycle, Time::from_ps(2_500));
    }

    #[test]
    fn block_size_mismatch_rejected() {
        let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
        cfg.cache.block_bytes = 32;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_matches_positional_constructors() {
        let built = SystemConfig::builder(ProtocolKind::Snooping, 16).build().unwrap();
        assert_eq!(built, SystemConfig::ring_500mhz(ProtocolKind::Snooping, 16));
        let built =
            SystemConfig::builder(ProtocolKind::Directory, 8).ring_250mhz().build().unwrap();
        assert_eq!(built, SystemConfig::ring_250mhz(ProtocolKind::Directory, 8));
    }

    #[test]
    fn builder_validates_at_build() {
        // 0 MIPS maps to a zero cycle time, caught by build().
        assert!(SystemConfig::builder(ProtocolKind::Snooping, 8).mips(0).build().is_err());
        // Too many nodes for the directory bitmap.
        assert!(SystemConfig::builder(ProtocolKind::Snooping, 65).build().is_err());
        let cfg = SystemConfig::builder(ProtocolKind::Snooping, 8)
            .mips(400)
            .retry_backoff_cycles(10)
            .model_bank_contention(true)
            .build()
            .unwrap();
        assert_eq!(cfg.proc_cycle, Time::from_ps(2_500));
        assert!(cfg.model_bank_contention);
    }

    #[test]
    fn zero_times_rejected() {
        let mut cfg = SystemConfig::ring_500mhz(ProtocolKind::Snooping, 8);
        cfg.proc_cycle = Time::ZERO;
        assert!(cfg.validate().is_err());
    }
}
