//! Satellite check for the SCI backend: the timed system's protocol engine
//! must be the *same protocol* as the untimed Table 1 accountant. Replaying
//! one reference stream through [`LinkedListAccountant`] and through
//! [`SciRingSystem::replay_reference`] must yield identical
//! [`TraversalReport`]s — every miss/invalidation traversal histogram bucket
//! included.

use ringsim_core::{SciRingSystem, SciSystemConfig};
use ringsim_proto::table1::LinkedListAccountant;
use ringsim_trace::{Workload, WorkloadSpec};
use ringsim_types::MemRef;

const PROCS: usize = 16;
const REFS_PER_NODE: u64 = 4_000;

#[test]
fn replay_matches_linked_list_accountant() {
    // One deterministic stream, observed twice.
    let mut source = Workload::new(WorkloadSpec::demo(PROCS)).expect("workload");
    let space = source.space();
    let refs: Vec<MemRef> = source.round_robin(REFS_PER_NODE).collect();

    let cfg = SciSystemConfig::sci_500mhz(PROCS);
    let layout = cfg.ring.layout().expect("layout");

    // Reference model: the proto crate's untimed accountant.
    let mut acct =
        LinkedListAccountant::new(layout, move |b| space.home_of_block(b)).expect("accountant");
    for &r in &refs {
        acct.process(r);
    }

    // System under test: the timed backend's engine via the untimed replay
    // hook. Built from an identically specified workload, so its home
    // mapping matches the accountant's.
    let workload = Workload::new(WorkloadSpec::demo(PROCS)).expect("workload");
    let mut sys = SciRingSystem::new(cfg, workload).expect("system");
    let replayed = sys.replay_reference(refs.iter().copied());

    let reference = acct.report();
    assert!(
        reference.miss.total() > 0 && reference.invalidate.total() > 0,
        "demo stream must exercise both histograms: {reference:?}"
    );
    assert_eq!(replayed, reference, "timed backend's engine diverged from the accountant");
    // `traversal_report` exposes the same accumulated state.
    assert_eq!(sys.traversal_report(), reference);
}
