//! The `Simulator` trait refactor must be a pure reorganisation: for every
//! backend, building through the [`SimKind`] registry and running through
//! the trait produces a report byte-identical (after serialisation) to the
//! pre-refactor direct-call path.

use ringsim_core::{
    BusSystem, BusSystemConfig, HierNetConfig, HierNetSim, RingSystem, RunOptions, SimKind,
    SimReport, SimSpec, SystemConfig,
};
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingHierarchy;
use ringsim_trace::{Workload, WorkloadSpec};
use ringsim_types::Time;

const PROCS: usize = 8;
const REFS: u64 = 4_000;

fn workload() -> Workload {
    Workload::new(WorkloadSpec::demo(PROCS).with_refs(REFS)).expect("workload")
}

fn spec() -> SimSpec {
    SimSpec::new(workload())
}

fn via_trait(kind: SimKind) -> SimReport {
    let mut sim = kind.build(&spec()).expect("build");
    sim.run(&RunOptions::default()).report
}

fn assert_identical(kind: SimKind, direct: &SimReport) {
    let trait_report = via_trait(kind);
    assert_eq!(&trait_report, direct, "{} report mismatch", kind.name());
    let a = serde_json::to_string_pretty(&trait_report).expect("json");
    let b = serde_json::to_string_pretty(direct).expect("json");
    assert_eq!(a, b, "{} serialised report mismatch", kind.name());
}

#[test]
fn ring_backends_match_direct_calls() {
    for (kind, cfg) in [
        (SimKind::Ring500, SystemConfig::ring_500mhz(ProtocolKind::Snooping, PROCS)),
        (SimKind::Ring250, SystemConfig::ring_250mhz(ProtocolKind::Snooping, PROCS)),
    ] {
        let cfg = cfg.with_proc_cycle(Time::from_ns(20));
        let direct = RingSystem::new(cfg, workload()).expect("system").run();
        assert_identical(kind, &direct);
    }
}

#[test]
fn bus_backends_match_direct_calls() {
    for (kind, cfg) in [
        (SimKind::Bus50, BusSystemConfig::bus_50mhz(PROCS)),
        (SimKind::Bus100, BusSystemConfig::bus_100mhz(PROCS)),
    ] {
        let cfg = cfg.with_proc_cycle(Time::from_ns(20));
        let direct = BusSystem::new(cfg, workload()).expect("system").run();
        assert_identical(kind, &direct);
    }
}

#[test]
fn hier_backend_matches_direct_calls() {
    // Mirror `SimKind::build`'s topology/budget derivation by hand: the
    // most balanced split of 8 processors and one transaction per ~50
    // references.
    let hier = RingHierarchy::new(2, 4).expect("hierarchy");
    let mut cfg = HierNetConfig::new(hier);
    cfg.txns_per_node = (REFS / 50).max(1);
    let mut sim = HierNetSim::new(cfg).expect("system");
    let rep = sim.run();
    let direct = sim.sim_report(&rep);
    assert_identical(SimKind::Hier, &direct);
}
