//! Differential property tests for the hot-path containers in
//! `ringsim_core::collections`.
//!
//! [`RingBuf`] and [`Slab`] replace `VecDeque` and map-backed storage in
//! the simulators' inner loops; the optimization is only sound if they are
//! observationally identical to the structures they replaced. Each test
//! drives the container and a `std` model through the same random
//! operation sequence and compares every result and the full observable
//! state after every step, so any divergence is caught at the first
//! operation that introduces it.
//!
//! Operations are drawn as `(kind, payload)` integer pairs and decoded
//! here — the vendored `proptest` stand-in supports range/tuple/vec
//! strategies but not `prop_oneof`, so the enum-shaped strategy is spelled
//! as a decoder over a small integer domain instead.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;
use ringsim_core::{RingBuf, Slab};

/// One operation against a FIFO queue. Payload-carrying variants store a
/// raw value that is reduced modulo the live length at apply time, so
/// every generated sequence stays meaningful regardless of how long the
/// queue is when the operation fires (and out-of-range probes are still
/// exercised via the `+ 1` slack in `Remove`).
#[derive(Debug, Clone)]
enum DequeOp {
    PushBack(u32),
    PushFront(u32),
    PopFront,
    /// Remove at `raw % (len + 1)` — occasionally one past the end, which
    /// must return `None` on both sides.
    Remove(usize),
    Clear,
}

/// Decodes a raw `(kind, payload)` draw; the `kind` domain is `0..10`, so
/// the weights are pushes 3/10 + 2/10, pops 2/10, removes 2/10, clear 1/10
/// — queues both grow and drain over a 200-op sequence.
fn decode_deque_op((kind, payload): (usize, u64)) -> DequeOp {
    match kind {
        0..=2 => DequeOp::PushBack(payload as u32),
        3..=4 => DequeOp::PushFront(payload as u32),
        5..=6 => DequeOp::PopFront,
        7..=8 => DequeOp::Remove(payload as usize),
        _ => DequeOp::Clear,
    }
}

/// Applies one operation to both queues and asserts the results agree.
fn apply_deque_op(op: &DequeOp, rb: &mut RingBuf<u32>, vd: &mut VecDeque<u32>) {
    match *op {
        DequeOp::PushBack(v) => {
            rb.push_back(v);
            vd.push_back(v);
        }
        DequeOp::PushFront(v) => {
            rb.push_front(v);
            vd.push_front(v);
        }
        DequeOp::PopFront => assert_eq!(rb.pop_front(), vd.pop_front()),
        DequeOp::Remove(raw) => {
            let i = raw % (vd.len() + 1);
            assert_eq!(rb.remove(i), vd.remove(i), "remove({i}) diverged");
        }
        DequeOp::Clear => {
            rb.clear();
            vd.clear();
        }
    }
}

/// Asserts every observation the simulators make of a queue matches the
/// model: length, emptiness, front, random access (including one past the
/// end), and front-to-back iteration order.
fn assert_deque_state(rb: &RingBuf<u32>, vd: &VecDeque<u32>) {
    assert_eq!(rb.len(), vd.len());
    assert_eq!(rb.is_empty(), vd.is_empty());
    assert_eq!(rb.front(), vd.front());
    for i in 0..=vd.len() {
        assert_eq!(rb.get(i), vd.get(i), "get({i}) diverged");
    }
    assert_eq!(rb.iter().copied().collect::<Vec<_>>(), vd.iter().copied().collect::<Vec<_>>());
}

proptest! {
    /// `RingBuf` is a drop-in for `VecDeque` under arbitrary
    /// interleavings of every operation the simulators use.
    #[test]
    fn ringbuf_matches_vecdeque(
        raw_ops in prop::collection::vec((0usize..10, any::<u64>()), 0..200),
    ) {
        let mut rb: RingBuf<u32> = RingBuf::new();
        let mut vd: VecDeque<u32> = VecDeque::new();
        for raw in raw_ops {
            let op = decode_deque_op(raw);
            apply_deque_op(&op, &mut rb, &mut vd);
            assert_deque_state(&rb, &vd);
        }
    }

    /// Pre-sizing only changes when allocation happens, never what is
    /// observed — the same sequences through a pre-warmed buffer match the
    /// model too (this exercises wrap-around at small capacities).
    #[test]
    fn ringbuf_with_capacity_matches_vecdeque(
        cap in 0usize..17,
        raw_ops in prop::collection::vec((0usize..10, any::<u64>()), 0..120),
    ) {
        let mut rb: RingBuf<u32> = RingBuf::with_capacity(cap);
        let mut vd: VecDeque<u32> = VecDeque::new();
        for raw in raw_ops {
            let op = decode_deque_op(raw);
            apply_deque_op(&op, &mut rb, &mut vd);
            assert_deque_state(&rb, &vd);
        }
    }
}

/// One operation against index-keyed storage. As with [`DequeOp`], raw
/// payloads select among the currently live keys at apply time.
#[derive(Debug, Clone)]
enum SlabOp {
    Insert(u32),
    /// Remove the live key at position `raw % live.len()` (skipped while
    /// empty — `Slab::remove` of a vacant slot is a documented panic, not
    /// a recoverable result, so it has its own test below).
    Remove(usize),
    /// Overwrite through `get_mut` at a live key.
    Mutate(usize, u32),
}

/// Decodes a raw `(kind, payload)` draw over the `0..6` kind domain:
/// inserts 3/6, removes 2/6, mutations 1/6.
fn decode_slab_op((kind, payload): (usize, u64)) -> SlabOp {
    match kind {
        0..=2 => SlabOp::Insert(payload as u32),
        3..=4 => SlabOp::Remove(payload as usize),
        _ => SlabOp::Mutate(payload as usize, (payload >> 32) as u32),
    }
}

proptest! {
    /// `Slab` against a `HashMap<key, value>` model plus a retired-key
    /// list: every handed-out key resolves to exactly the value stored
    /// under it, removal returns that value and retires the key, and no
    /// retired or never-issued key ever resolves.
    #[test]
    fn slab_matches_map_model(
        raw_ops in prop::collection::vec((0usize..6, any::<u64>()), 0..200),
    ) {
        let mut slab: Slab<u32> = Slab::new();
        let mut model: HashMap<usize, u32> = HashMap::new();
        // Insertion-ordered live keys, so `raw % len` picks deterministically.
        let mut live: Vec<usize> = Vec::new();
        let mut retired: Vec<usize> = Vec::new();

        for raw in raw_ops {
            match decode_slab_op(raw) {
                SlabOp::Insert(v) => {
                    let key = slab.insert(v);
                    prop_assert!(
                        model.insert(key, v).is_none(),
                        "insert handed out live key {}",
                        key
                    );
                    retired.retain(|&k| k != key);
                    live.push(key);
                }
                SlabOp::Remove(raw_idx) => {
                    if live.is_empty() {
                        continue;
                    }
                    let key = live.remove(raw_idx % live.len());
                    let expected = model.remove(&key).expect("model tracks live keys");
                    prop_assert_eq!(slab.remove(key), expected);
                    retired.push(key);
                }
                SlabOp::Mutate(raw_idx, v) => {
                    if live.is_empty() {
                        continue;
                    }
                    let key = live[raw_idx % live.len()];
                    *slab.get_mut(key).expect("live key resolves mutably") = v;
                    model.insert(key, v);
                }
            }
            prop_assert_eq!(slab.len(), model.len());
            prop_assert_eq!(slab.is_empty(), model.is_empty());
            for (&key, &value) in &model {
                prop_assert_eq!(slab.get(key), Some(&value));
            }
            for &key in &retired {
                prop_assert_eq!(slab.get(key), None, "retired key {} resolves", key);
            }
            prop_assert_eq!(slab.get(usize::MAX - 1), None);
        }
    }

    /// Slot keys stay dense: they never exceed the high-water mark of
    /// simultaneously live entries, which is the property that lets the
    /// event queue's arena stop growing at steady state.
    #[test]
    fn slab_keys_bounded_by_high_water_mark(
        raw_ops in prop::collection::vec((0usize..6, any::<u64>()), 0..200),
    ) {
        let mut slab: Slab<u32> = Slab::new();
        let mut live: Vec<usize> = Vec::new();
        let mut high_water = 0usize;
        for raw in raw_ops {
            match decode_slab_op(raw) {
                SlabOp::Insert(v) => {
                    let key = slab.insert(v);
                    live.push(key);
                    high_water = high_water.max(live.len());
                    prop_assert!(key < high_water, "key {} outside 0..{}", key, high_water);
                }
                SlabOp::Remove(raw_idx) if !live.is_empty() => {
                    let key = live.remove(raw_idx % live.len());
                    slab.remove(key);
                }
                _ => {}
            }
        }
    }
}

#[test]
fn slab_remove_is_lifo_and_vacant_remove_panics() {
    let mut slab: Slab<u32> = Slab::new();
    let a = slab.insert(1);
    let b = slab.insert(2);
    slab.remove(a);
    slab.remove(b);
    // Most recently freed slot comes back first.
    assert_eq!(slab.insert(3), b);
    assert_eq!(slab.insert(4), a);
    let freed = a;
    slab.remove(freed);
    assert!(std::panic::catch_unwind(move || slab.remove(freed)).is_err());
}
