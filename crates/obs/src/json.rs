//! A minimal JSON reader.
//!
//! The vendored `serde_json` stand-in is serialize-only, but the `ringsim
//! stats` subcommand and the CI trace check need to *read* metrics and
//! Chrome trace files back. This module provides a small recursive-descent
//! parser producing a [`JsonValue`] tree — enough JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) to round-trip everything
//! ringsim emits.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys retained).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by ringsim;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { at: start, msg: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\"y", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_own_serde_json_output() {
        use serde::Serialize;
        #[derive(Serialize)]
        struct S {
            n: u64,
            v: Vec<f64>,
            s: String,
        }
        let s = S { n: 7, v: vec![1.5, 2.0], s: "hi \"there\"".to_owned() };
        let text = serde_json::to_string_pretty(&s).unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi \"there\""));
    }
}
