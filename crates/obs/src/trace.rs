//! Per-transaction structured event recording and Chrome trace export.
//!
//! Events live in a bounded ring buffer ([`TraceBuffer`]); when full, the
//! *oldest* events are dropped and counted, so a long run keeps its tail
//! and the exporter can report exactly how much was lost. The export format
//! is the Chrome `trace_event` JSON array (`{"traceEvents": [...]}`):
//! complete spans (`ph:"X"`) with microsecond timestamps, one track (`tid`)
//! per processor, loadable directly in Perfetto or `chrome://tracing`.

use std::collections::VecDeque;

use ringsim_types::Time;

/// One trace event. Timestamps/durations are picoseconds of simulated time
/// (converted to fractional microseconds on export, as the format requires).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `"miss"`, `"probe"`, `"retry"`).
    pub name: &'static str,
    /// Category (e.g. `"txn"`, `"phase"`).
    pub cat: &'static str,
    /// Phase: `'X'` complete span, `'i'` instant.
    pub ph: char,
    /// Start timestamp in picoseconds.
    pub ts_ps: u64,
    /// Duration in picoseconds (0 for instants).
    pub dur_ps: u64,
    /// Track id: the processor/node index.
    pub tid: u32,
    /// Extra `args` rendered as string values.
    pub args: Vec<(&'static str, String)>,
}

/// Bounded FIFO of trace events; drops (and counts) the oldest when full.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

/// Default event capacity — comfortably holds every event of the default
/// CLI run while bounding pathological ones.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

impl TraceBuffer {
    /// Creates an empty buffer holding at most `cap` events.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self { events: VecDeque::new(), cap: cap.max(1), dropped: 0 }
    }

    /// Appends an event, evicting the oldest if at capacity.
    ///
    /// The **first** eviction raises a warning through the process-wide obs
    /// sink (see [`crate::export::record_warning`]) so long runs surface
    /// truncation the moment it starts, not in the export footer; further
    /// evictions only bump the [`dropped`](Self::dropped) counter.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            if self.dropped == 0 {
                crate::export::record_warning(format!(
                    "trace buffer full ({} events): dropping oldest events from now on — \
                     the exported trace will be truncated (raise the recorder's trace capacity)",
                    self.cap
                ));
            }
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the buffer as Chrome `trace_event` JSON.
    ///
    /// Timestamps are microseconds with 6 decimal places — exact picosecond
    /// precision survives the round-trip. `pid` is always 1 (one simulated
    /// machine); `tid` is the processor index, with thread-name metadata so
    /// Perfetto labels tracks `P0`, `P1`, ….
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * (self.events.len() + 2));
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"ringsim\"}}",
        );
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\
                 \"tid\":{tid},\"args\":{{\"name\":\"P{tid}\"}}}}"
            ));
        }
        for ev in &self.events {
            out.push_str(",\n");
            out.push_str(&Self::event_json(ev));
        }
        out.push_str("\n]");
        // Always present, so truncated traces are detectable (a missing
        // counter is indistinguishable from zero in older files).
        out.push_str(&format!(",\"droppedEvents\":{}", self.dropped));
        out.push_str("}\n");
        out
    }

    fn event_json(ev: &TraceEvent) -> String {
        // Microseconds with full picosecond precision (1 ps = 1e-6 us).
        let ts_us = format!("{:.6}", ev.ts_ps as f64 / 1e6);
        let mut s = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            ev.name, ev.cat, ev.ph, ts_us, ev.tid
        );
        if ev.ph == 'X' {
            s.push_str(&format!(",\"dur\":{:.6}", ev.dur_ps as f64 / 1e6));
        }
        if !ev.args.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{k}\":\"{}\"", escape(v)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Convenience: builds a complete-span event.
#[must_use]
pub fn span(name: &'static str, cat: &'static str, tid: u32, start: Time, end: Time) -> TraceEvent {
    TraceEvent {
        name,
        cat,
        ph: 'X',
        ts_ps: start.as_ps(),
        dur_ps: end.as_ps().saturating_sub(start.as_ps()),
        tid,
        args: Vec::new(),
    }
}

/// Convenience: builds an instant event.
#[must_use]
pub fn instant(name: &'static str, cat: &'static str, tid: u32, at: Time) -> TraceEvent {
    TraceEvent { name, cat, ph: 'i', ts_ps: at.as_ps(), dur_ps: 0, tid, args: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_counts_drops() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5u64 {
            b.push(instant("x", "t", 0, Time::from_ns(i)));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        // Tail retained.
        let ts: Vec<u64> = b.events().map(|e| e.ts_ps).collect();
        assert_eq!(ts, vec![3000, 4000]);
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let mut b = TraceBuffer::new(16);
        b.push(span("miss", "txn", 3, Time::from_ns(10), Time::from_ns(25)));
        let json = b.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":3"));
        // 10 ns = 0.01 us; 15 ns dur = 0.015 us.
        assert!(json.contains("\"ts\":0.010000"));
        assert!(json.contains("\"dur\":0.015000"));
        let parsed = crate::json::parse(&json).expect("chrome export must be valid JSON");
        assert!(parsed.get("traceEvents").is_some());
        // The drop counter is always in the footer, even when zero.
        assert_eq!(parsed.get("droppedEvents").and_then(crate::json::JsonValue::as_u64), Some(0));
    }

    #[test]
    fn chrome_json_reports_drop_count() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5u64 {
            b.push(instant("x", "t", 0, Time::from_ns(i)));
        }
        let parsed = crate::json::parse(&b.to_chrome_json()).unwrap();
        assert_eq!(parsed.get("droppedEvents").and_then(crate::json::JsonValue::as_u64), Some(3));
    }

    #[test]
    fn escape_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn first_drop_warns_once_through_the_obs_sink() {
        // Use a capacity no other test shares so the assertion is robust to
        // warnings recorded concurrently by sibling tests.
        let mut b = TraceBuffer::new(7);
        for i in 0..7u64 {
            b.push(instant("x", "t", 0, Time::from_ns(i)));
        }
        let fingerprint = "trace buffer full (7 events)";
        let before =
            crate::export::warnings_snapshot().iter().filter(|w| w.contains(fingerprint)).count();
        // Overflow many times: exactly one warning for this buffer.
        for i in 7..30u64 {
            b.push(instant("x", "t", 0, Time::from_ns(i)));
        }
        assert_eq!(b.dropped(), 23);
        let after =
            crate::export::warnings_snapshot().iter().filter(|w| w.contains(fingerprint)).count();
        assert_eq!(after, before + 1);
    }
}
