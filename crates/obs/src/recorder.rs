//! The recorder handle the simulators carry.
//!
//! [`Obs`] is an `Option<Box<Recorder>>` in a trenchcoat: every
//! instrumentation call is `#[inline]` and begins with a single
//! `is-enabled` branch, so a disabled handle compiles down to a
//! predictable never-taken jump — the simulators pay nothing measurable
//! and, because the recorder only *observes* (it never touches the RNG,
//! the schedule, or report contents), artifacts stay byte-identical
//! whether telemetry is on or off. CI enforces that, the same way it does
//! for the coherence sanitizer.
//!
//! A transaction is recorded as `txn_begin` → zero or more `txn_mark`
//! phase boundaries → `txn_end`, which emits one top-level span (`cat:
//! "txn"`) plus one sub-span per phase (`cat: "phase"`) into the bounded
//! trace buffer. Gauges go into [`Timeline`]s sampled every
//! [`ObsConfig::sample_period`] of simulated time.

use ringsim_types::Time;

use crate::timeline::Timeline;
use crate::trace::{TraceBuffer, DEFAULT_TRACE_CAPACITY};

/// Tuning knobs for an enabled recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace ring-buffer capacity, in events.
    pub trace_capacity: usize,
    /// Simulated-time interval between gauge samples.
    pub sample_period: Time,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self { trace_capacity: DEFAULT_TRACE_CAPACITY, sample_period: Time::from_ns(500) }
    }
}

/// An open (not yet retired) transaction being traced.
#[derive(Debug, Clone)]
struct OpenTxn {
    name: &'static str,
    block: u64,
    start: Time,
    marks: Vec<(&'static str, Time)>,
}

/// The live recording state behind an enabled [`Obs`].
#[derive(Debug)]
pub struct Recorder {
    cfg: ObsConfig,
    /// Per-transaction event buffer.
    pub trace: TraceBuffer,
    /// Gauge time series, in [`Obs::add_timeline`] order.
    pub timelines: Vec<Timeline>,
    open: Vec<Option<OpenTxn>>,
    next_sample: Time,
    accs: Vec<(f64, u64)>,
}

/// Telemetry handle carried by every simulator; cheap no-op when disabled.
#[derive(Debug, Default)]
pub struct Obs {
    rec: Option<Box<Recorder>>,
}

impl Obs {
    /// A disabled handle: every call is a single never-taken branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { rec: None }
    }

    /// An enabled handle for a machine with `nodes` processors.
    #[must_use]
    pub fn enabled(cfg: ObsConfig, nodes: usize) -> Self {
        Self {
            rec: Some(Box::new(Recorder {
                cfg,
                trace: TraceBuffer::new(cfg.trace_capacity),
                timelines: Vec::new(),
                open: vec![None; nodes],
                next_sample: Time::ZERO,
                accs: Vec::new(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Consumes the handle, yielding the recorder if it was enabled.
    #[must_use]
    pub fn into_recorder(self) -> Option<Recorder> {
        self.rec.map(|b| *b)
    }

    /// Starts tracing a transaction on `node`.
    #[inline]
    pub fn txn_begin(&mut self, node: usize, name: &'static str, block: u64, at: Time) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        if let Some(slot) = r.open.get_mut(node) {
            *slot = Some(OpenTxn { name, block, start: at, marks: Vec::new() });
        }
    }

    /// Records a phase boundary of `node`'s open transaction: the phase
    /// named `phase` *completed* at `at`.
    #[inline]
    pub fn txn_mark(&mut self, node: usize, phase: &'static str, at: Time) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        if let Some(Some(t)) = r.open.get_mut(node) {
            t.marks.push((phase, at));
        }
    }

    /// Retires `node`'s open transaction at `at`, emitting its spans.
    /// `name` is the final top-level event name (`"miss"` / `"upgrade"` —
    /// a transaction's kind can convert mid-flight, so it is resolved at
    /// retire time); `class` labels the resolved transaction class (e.g.
    /// `"dirty"`).
    #[inline]
    pub fn txn_end(&mut self, node: usize, name: &'static str, class: &'static str, at: Time) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        let Some(Some(txn)) = r.open.get_mut(node).map(Option::take) else { return };
        r.emit_txn(node, &txn, name, class, at);
    }

    /// Discards `node`'s open transaction without emitting anything (e.g.
    /// a retried transaction restarting from scratch keeps its original
    /// `txn_begin`, so this is only for true abandonment).
    #[inline]
    pub fn txn_abandon(&mut self, node: usize) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        if let Some(slot) = r.open.get_mut(node) {
            *slot = None;
        }
    }

    /// Emits an instant event (e.g. a retry NAK) on `node`'s track.
    #[inline]
    pub fn instant(&mut self, node: usize, name: &'static str, at: Time) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        r.trace.push(crate::trace::instant(name, "event", node as u32, at));
    }

    /// Registers a gauge timeline; returns its index for [`Obs::sample`].
    /// Returns `usize::MAX` when disabled (safe to pass back in).
    pub fn add_timeline(&mut self, name: &str, columns: &[&str]) -> usize {
        let Some(r) = self.rec.as_deref_mut() else { return usize::MAX };
        r.timelines.push(Timeline::new(name, columns));
        r.timelines.len() - 1
    }

    /// Whether a gauge sample is due at simulated time `now`; advances the
    /// sampling clock when it is. Always `false` when disabled.
    #[inline]
    pub fn sample_due(&mut self, now: Time) -> bool {
        let Some(r) = self.rec.as_deref_mut() else { return false };
        if now < r.next_sample {
            return false;
        }
        let period = r.cfg.sample_period.max(Time::from_ps(1));
        r.next_sample = now + period;
        true
    }

    /// Pushes one gauge row (pair with a `true` from [`Obs::sample_due`]).
    #[inline]
    pub fn sample(&mut self, timeline: usize, now: Time, values: Vec<f64>) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        if let Some(t) = r.timelines.get_mut(timeline) {
            t.push(now, values);
        }
    }

    /// Adds `v` to windowed accumulator `idx` (grown on demand). Used for
    /// gauges that average over the sampling window, like arbitration wait.
    #[inline]
    pub fn acc_add(&mut self, idx: usize, v: f64) {
        let Some(r) = self.rec.as_deref_mut() else { return };
        if r.accs.len() <= idx {
            r.accs.resize(idx + 1, (0.0, 0));
        }
        let (sum, n) = &mut r.accs[idx];
        *sum += v;
        *n += 1;
    }

    /// Drains accumulator `idx`, returning the mean over the window (0 if
    /// nothing accumulated or disabled).
    #[inline]
    pub fn acc_take_mean(&mut self, idx: usize) -> f64 {
        let Some(r) = self.rec.as_deref_mut() else { return 0.0 };
        match r.accs.get_mut(idx) {
            Some((sum, n)) if *n > 0 => {
                let mean = *sum / *n as f64;
                *sum = 0.0;
                *n = 0;
                mean
            }
            _ => 0.0,
        }
    }
}

impl Recorder {
    fn emit_txn(
        &mut self,
        node: usize,
        txn: &OpenTxn,
        name: &'static str,
        class: &'static str,
        end: Time,
    ) {
        let tid = node as u32;
        let end = end.max(txn.start);
        // Clamp marks into [start, end] and make them monotone: some marks
        // are scheduled completion times that can sit past the next mark's
        // event time by a latency constant.
        let mut prev = txn.start;
        for &(phase, at) in &txn.marks {
            let at = at.clamp(prev, end);
            self.trace.push(crate::trace::span(phase, "phase", tid, prev, at));
            prev = at;
        }
        if prev < end {
            self.trace.push(crate::trace::span("retire", "phase", tid, prev, end));
        }
        let mut top = crate::trace::span(name, "txn", tid, txn.start, end);
        top.args.push(("op", txn.name.to_owned()));
        top.args.push(("class", class.to_owned()));
        top.args.push(("block", format!("{:#x}", txn.block)));
        self.trace.push(top);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let mut obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.txn_begin(0, "read", 1, Time::from_ns(5));
        obs.txn_mark(0, "probe", Time::from_ns(6));
        obs.txn_end(0, "miss", "dirty", Time::from_ns(9));
        assert!(!obs.sample_due(Time::from_ns(100)));
        assert_eq!(obs.add_timeline("x", &["a"]), usize::MAX);
        assert!(obs.into_recorder().is_none());
    }

    #[test]
    fn txn_spans_cover_latency() {
        let mut obs = Obs::enabled(ObsConfig::default(), 2);
        obs.txn_begin(1, "read", 0x40, Time::from_ns(100));
        obs.txn_mark(1, "probe", Time::from_ns(140));
        // Out-of-order mark gets clamped, not reordered.
        obs.txn_mark(1, "forward", Time::from_ns(130));
        obs.txn_end(1, "miss", "dirty", Time::from_ns(200));
        let rec = obs.into_recorder().unwrap();
        let spans: Vec<_> = rec.trace.events().collect();
        // probe + forward + retire + top-level miss.
        assert_eq!(spans.len(), 4);
        let top = spans.last().unwrap();
        assert_eq!(top.name, "miss");
        assert_eq!(top.dur_ps, 100_000);
        // Phase spans tile [start, end] exactly.
        let phase_total: u64 = spans.iter().filter(|e| e.cat == "phase").map(|e| e.dur_ps).sum();
        assert_eq!(phase_total, top.dur_ps);
    }

    #[test]
    fn sampling_clock_advances() {
        let cfg = ObsConfig { sample_period: Time::from_ns(10), ..Default::default() };
        let mut obs = Obs::enabled(cfg, 1);
        assert!(obs.sample_due(Time::ZERO));
        assert!(!obs.sample_due(Time::from_ns(5)));
        assert!(obs.sample_due(Time::from_ns(10)));
    }

    #[test]
    fn accumulator_windows() {
        let mut obs = Obs::enabled(ObsConfig::default(), 1);
        obs.acc_add(0, 10.0);
        obs.acc_add(0, 30.0);
        assert_eq!(obs.acc_take_mean(0), 20.0);
        assert_eq!(obs.acc_take_mean(0), 0.0);
    }
}
