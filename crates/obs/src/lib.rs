//! Observability subsystem for ringsim (`ringsim::obs`).
//!
//! Everything the simulators measure beyond end-of-run means lives here:
//!
//! - [`LatencyHistogram`] — log2-bucketed latency distributions per
//!   transaction class, with p50/p95/p99 and an exactly order-independent
//!   [`LatencyHistogram::merge`] so parallel sweep shards combine
//!   deterministically.
//! - [`Timeline`] — windowed gauges (ring slot utilization, probe- vs
//!   data-slot occupancy, home queue depth, bus arbitration wait) sampled
//!   on a fixed simulated-time period with bounded, deterministic
//!   decimation.
//! - [`Obs`] / [`Recorder`] — the per-simulator telemetry handle: a
//!   bounded per-transaction event buffer exportable as Chrome
//!   `trace_event` JSON ([`TraceBuffer::to_chrome_json`]), viewable in
//!   Perfetto.
//! - [`MetricsSummary`] / [`MetricsFile`] — JSON/CSV exporters, plus the
//!   process-wide sink behind `experiments --metrics`.
//! - [`json`] — a minimal JSON reader (the vendored `serde_json` is
//!   serialize-only) powering `ringsim stats` and the CI trace check.
//!
//! # Overhead contract
//!
//! Telemetry is strictly observational: enabling it must not change any
//! simulation result, and a disabled [`Obs`] handle costs one predictable
//! branch per hook. CI enforces the stronger artifact form of this
//! contract — release experiment artifacts are byte-identical with
//! telemetry off and with telemetry on-but-unexported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod timeline;
pub mod trace;

pub use export::{
    global_metrics_enabled, global_metrics_snapshot, global_record, global_record_timeline,
    hist_from_json, record_warning, set_global_metrics, set_run_label, take_global_metrics,
    take_global_timelines, take_warnings, warnings_snapshot, MetricsFile, MetricsSummary,
};
pub use hist::{LatencyHistogram, BUCKETS};
pub use recorder::{Obs, ObsConfig, Recorder};
pub use timeline::{Timeline, TimelineRow};
pub use trace::{TraceBuffer, TraceEvent, DEFAULT_TRACE_CAPACITY};
