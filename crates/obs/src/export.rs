//! Metrics summaries and exporters (JSON / CSV), plus the process-wide
//! metrics sink the `experiments --metrics` path feeds.
//!
//! [`MetricsSummary`] is the per-run digest every simulator can produce:
//! one [`LatencyHistogram`] per transaction class. Its merge is exactly
//! order-independent (integer sums — see `hist`), which is what lets the
//! parallel sweep engine fold worker shards in completion order and still
//! write byte-identical `metrics.json` artifacts for any `--jobs N`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::hist::{LatencyHistogram, BUCKETS};
use crate::json::JsonValue;
use crate::timeline::Timeline;

/// Per-transaction-class latency digest of one or more runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Number of runs folded into this summary.
    pub runs: u64,
    /// All misses (every class combined).
    pub miss: LatencyHistogram,
    /// Write upgrades (ownership acquisition without a data transfer).
    pub upgrade: LatencyHistogram,
    /// Misses satisfied by the local cluster/home.
    pub local: LatencyHistogram,
    /// Misses served by a clean remote home.
    pub clean_remote: LatencyHistogram,
    /// Misses forwarded to a dirty remote cache.
    pub dirty: LatencyHistogram,
}

impl MetricsSummary {
    /// Folds another summary into this one (associative and commutative).
    pub fn merge(&mut self, other: &Self) {
        self.runs += other.runs;
        self.miss.merge(&other.miss);
        self.upgrade.merge(&other.upgrade);
        self.local.merge(&other.local);
        self.clean_remote.merge(&other.clean_remote);
        self.dirty.merge(&other.dirty);
    }

    /// `(label, histogram)` pairs, for table/CSV rendering.
    #[must_use]
    pub fn classes(&self) -> [(&'static str, &LatencyHistogram); 5] {
        [
            ("miss", &self.miss),
            ("upgrade", &self.upgrade),
            ("local", &self.local),
            ("clean_remote", &self.clean_remote),
            ("dirty", &self.dirty),
        ]
    }

    /// Renders per-class count / mean / percentiles as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("class,count,mean_ns,p50_ns,p95_ns,p99_ns,min_ns,max_ns\n");
        for (name, h) in self.classes() {
            out.push_str(&format!(
                "{name},{},{:.3},{},{},{},{},{}\n",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.min().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            ));
        }
        out
    }
}

/// The on-disk metrics document: a summary plus any gauge timelines.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsFile {
    /// Per-class latency digest.
    pub summary: MetricsSummary,
    /// Gauge time series captured during the run(s).
    pub timelines: Vec<Timeline>,
}

impl MetricsFile {
    /// Serializes to pretty JSON (the `--metrics <path>` format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialization is infallible")
    }
}

/// Rebuilds a histogram from its parsed JSON form (`ringsim stats` input).
#[must_use]
pub fn hist_from_json(v: &JsonValue) -> Option<LatencyHistogram> {
    let count = v.get("count")?.as_u64()?;
    let sum_ns = v.get("sum_ns")?.as_u64()?;
    let min = v.get("min").and_then(JsonValue::as_f64);
    let max = v.get("max").and_then(JsonValue::as_f64);
    let buckets: Vec<u64> =
        v.get("buckets")?.as_array()?.iter().map(JsonValue::as_u64).collect::<Option<_>>()?;
    if buckets.len() != BUCKETS {
        return None;
    }
    LatencyHistogram::from_parts(count, sum_ns, min, max, buckets)
}

// --- Process-wide metrics sink -------------------------------------------
//
// Mirrors the sanitizer's process-wide switch: `experiments --metrics`
// flips it on, every simulator run then folds its summary into the sink,
// and the CLI drains it once at the end. Merging is order-independent, so
// parallel sweep workers racing on this mutex cannot perturb the output.

static GLOBAL_ON: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<MetricsSummary>> = Mutex::new(None);
static TIMELINE_SINK: Mutex<Vec<Timeline>> = Mutex::new(Vec::new());

thread_local! {
    /// Label prefixed onto timeline names fed to the sink from this thread
    /// (the sweep engine sets `<experiment>/<point-label>` around each
    /// point, so exported timelines are distinguishable *and* sort into a
    /// jobs-count-independent order).
    static RUN_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Turns the process-wide metrics sink on or off (clearing it either way).
pub fn set_global_metrics(on: bool) {
    GLOBAL_ON.store(on, Ordering::Relaxed);
    *SINK.lock().unwrap() = None;
    TIMELINE_SINK.lock().unwrap().clear();
}

/// Whether simulator runs should feed the process-wide sink.
#[must_use]
pub fn global_metrics_enabled() -> bool {
    GLOBAL_ON.load(Ordering::Relaxed)
}

/// Folds one run's summary into the process-wide sink (no-op when off).
pub fn global_record(summary: &MetricsSummary) {
    if !global_metrics_enabled() {
        return;
    }
    let mut sink = SINK.lock().unwrap();
    match sink.as_mut() {
        Some(acc) => acc.merge(summary),
        None => *sink = Some(summary.clone()),
    }
}

/// Drains the process-wide sink.
#[must_use]
pub fn take_global_metrics() -> Option<MetricsSummary> {
    SINK.lock().unwrap().take()
}

/// Clones the process-wide sink without draining it, for long-running
/// consumers (the HTTP service's `/metrics` endpoint) that must not steal
/// the summary from the end-of-process exporter.
#[must_use]
pub fn global_metrics_snapshot() -> Option<MetricsSummary> {
    SINK.lock().unwrap().clone()
}

/// Sets (or clears, with `None`) this thread's run label. Timelines fed to
/// [`global_record_timeline`] from this thread get their names prefixed
/// `<label>/`.
pub fn set_run_label(label: Option<&str>) {
    RUN_LABEL.with(|l| *l.borrow_mut() = label.map(str::to_owned));
}

/// Feeds one gauge timeline into the process-wide sink (no-op when off).
pub fn global_record_timeline(mut tl: Timeline) {
    if !global_metrics_enabled() {
        return;
    }
    RUN_LABEL.with(|l| {
        if let Some(prefix) = l.borrow().as_deref() {
            tl.name = format!("{prefix}/{}", tl.name);
        }
    });
    TIMELINE_SINK.lock().unwrap().push(tl);
}

/// Drains the process-wide timeline sink, sorted by name so the output is
/// independent of worker-thread completion order.
#[must_use]
pub fn take_global_timelines() -> Vec<Timeline> {
    let mut v = std::mem::take(&mut *TIMELINE_SINK.lock().unwrap());
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

// --- Process-wide warning sink -------------------------------------------
//
// Loud-but-bounded: telemetry components that detect data loss (the trace
// buffer dropping its oldest events, for example) report it here the moment
// it happens, instead of leaving a counter to be discovered in an export
// footer. Warnings are mirrored to stderr immediately and retained for
// later inspection (the HTTP service surfaces them on `/metrics`).

static WARNINGS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Retention cap for [`record_warning`]; stderr mirroring is not capped.
const MAX_WARNINGS: usize = 64;

/// Records a process-wide observability warning: prints it to stderr
/// immediately and retains it (up to a small cap) for
/// [`warnings_snapshot`] / [`take_warnings`] consumers.
pub fn record_warning(msg: impl Into<String>) {
    let msg = msg.into();
    eprintln!("warning: {msg}");
    let mut w = WARNINGS.lock().unwrap();
    if w.len() < MAX_WARNINGS {
        w.push(msg);
    }
}

/// Clones the retained warnings without draining them.
#[must_use]
pub fn warnings_snapshot() -> Vec<String> {
    WARNINGS.lock().unwrap().clone()
}

/// Drains the retained warnings.
#[must_use]
pub fn take_warnings() -> Vec<String> {
    std::mem::take(&mut *WARNINGS.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary(seed: u64) -> MetricsSummary {
        let mut s = MetricsSummary { runs: 1, ..Default::default() };
        for i in 0..50 {
            let ns = ((seed * 131 + i * 17) % 4000) as f64;
            s.miss.record(ns);
            if i % 3 == 0 {
                s.dirty.record(ns);
            } else {
                s.clean_remote.record(ns);
            }
        }
        s
    }

    #[test]
    fn merge_is_order_independent() {
        let (a, b, c) = (sample_summary(1), sample_summary(2), sample_summary(3));
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
        assert_eq!(abc.runs, 3);
    }

    #[test]
    fn json_round_trip_through_parser() {
        let file = MetricsFile { summary: sample_summary(9), timelines: Vec::new() };
        let text = file.to_json();
        let parsed = crate::json::parse(&text).unwrap();
        let miss = parsed.get("summary").unwrap().get("miss").unwrap();
        let rebuilt = hist_from_json(miss).unwrap();
        assert_eq!(rebuilt, file.summary.miss);
    }

    /// Serialises the tests that flip the process-wide sinks.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn global_sink_folds_runs() {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_global_metrics(true);
        global_record(&sample_summary(4));
        global_record(&sample_summary(5));
        let got = take_global_metrics().unwrap();
        assert_eq!(got.runs, 2);
        set_global_metrics(false);
        global_record(&sample_summary(6));
        assert!(take_global_metrics().is_none());
    }

    #[test]
    fn timeline_sink_labels_and_sorts() {
        use ringsim_types::Time;
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_global_metrics(true);
        set_run_label(Some("exp/b"));
        let mut tl = Timeline::new("ring", &["util"]);
        tl.push(Time::from_ns(1), vec![0.5]);
        global_record_timeline(tl.clone());
        set_run_label(Some("exp/a"));
        global_record_timeline(tl.clone());
        set_run_label(None);
        global_record_timeline(tl.clone());
        let got = take_global_timelines();
        let names: Vec<&str> = got.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["exp/a/ring", "exp/b/ring", "ring"]);
        assert!(take_global_timelines().is_empty());
        set_global_metrics(false);
        global_record_timeline(tl);
        assert!(take_global_timelines().is_empty());
    }

    #[test]
    fn csv_has_all_classes() {
        let csv = sample_summary(7).to_csv();
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("class,count,mean_ns"));
    }
}
