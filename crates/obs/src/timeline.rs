//! Windowed time-series gauges.
//!
//! A [`Timeline`] is a named set of gauge columns sampled at fixed
//! simulated-time intervals: ring slot utilization, probe- vs data-slot
//! occupancy, home-node queue depth, bus arbitration wait, and so on.
//! Memory is bounded deterministically: when the row cap is reached the
//! series is thinned by dropping every other retained row and the sampling
//! stride doubles, so a run of any length keeps at most `cap` rows whose
//! selection depends only on the sample sequence (never on wall time).

use ringsim_types::Time;
use serde::{Deserialize, Serialize};

/// Maximum number of retained rows before the series is thinned 2:1.
pub const DEFAULT_ROW_CAP: usize = 4096;

/// One sample row: a timestamp plus one value per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineRow {
    /// Simulated timestamp of the sample, in picoseconds.
    pub ts_ps: u64,
    /// Gauge values, one per [`Timeline::columns`] entry.
    pub values: Vec<f64>,
}

/// A bounded, deterministically decimated time series of gauge samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Series name (e.g. `"ring"`, `"bus"`).
    pub name: String,
    /// Column names, in the order values are pushed.
    pub columns: Vec<String>,
    /// Retained rows, oldest first.
    pub rows: Vec<TimelineRow>,
    /// Current decimation stride: only every `stride`-th offered sample is
    /// retained. Starts at 1 and doubles on each thinning pass.
    pub stride: u64,
    /// Total samples offered (including decimated-away ones).
    pub offered: u64,
    cap: usize,
}

impl Timeline {
    /// Creates an empty timeline with the default row cap.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self::with_cap(name, columns, DEFAULT_ROW_CAP)
    }

    /// Creates an empty timeline with an explicit row cap (≥ 2).
    #[must_use]
    pub fn with_cap(name: &str, columns: &[&str], cap: usize) -> Self {
        Self {
            name: name.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
            stride: 1,
            offered: 0,
            cap: cap.max(2),
        }
    }

    /// Offers one sample row. Decimation may discard it; retained rows keep
    /// their original timestamps.
    pub fn push(&mut self, ts: Time, values: Vec<f64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        let keep = self.offered.is_multiple_of(self.stride);
        self.offered += 1;
        if !keep {
            return;
        }
        self.rows.push(TimelineRow { ts_ps: ts.as_ps(), values });
        if self.rows.len() >= self.cap {
            // Thin 2:1 (keep even indices) and halve the future rate.
            let mut i = 0;
            self.rows.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
        }
    }

    /// Renders the series as CSV (`ts_ns` first column, then gauges).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ts_ns");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{}", row.ts_ps as f64 / 1e3));
            for v in &row.values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_deterministic() {
        let mut t = Timeline::with_cap("ring", &["util"], 8);
        for i in 0..1000u64 {
            t.push(Time::from_ns(i), vec![i as f64]);
        }
        assert!(t.rows.len() < 8);
        assert_eq!(t.offered, 1000);
        assert!(t.stride > 1);
        // Retained rows are strictly increasing in time.
        for w in t.rows.windows(2) {
            assert!(w[0].ts_ps < w[1].ts_ps);
        }
        // Same input sequence → identical retained rows.
        let mut u = Timeline::with_cap("ring", &["util"], 8);
        for i in 0..1000u64 {
            u.push(Time::from_ns(i), vec![i as f64]);
        }
        assert_eq!(t, u);
    }

    #[test]
    fn csv_shape() {
        let mut t = Timeline::new("bus", &["busy", "wait"]);
        t.push(Time::from_ns(10), vec![0.5, 2.0]);
        let csv = t.to_csv();
        assert_eq!(csv, "ts_ns,busy,wait\n10,0.5,2\n");
    }
}
