//! Log2-bucketed latency histograms with a deterministic merge.
//!
//! [`LatencyHistogram`] replaces the mean-only accumulators that used to
//! back `ClassLatencies`: it keeps the exact count / sum / min / max that
//! the old `RunningMean` provided *and* a 64-bucket power-of-two histogram
//! that supports p50/p95/p99 queries and an order-independent merge, so
//! sweep workers can combine shards in any completion order and still
//! produce byte-identical artifacts.
//!
//! # Determinism contract
//!
//! Floating-point addition is commutative but not associative, so a merged
//! `f64` sum would depend on shard order. The histogram therefore
//! accumulates its sum as an *integer* number of nanoseconds (each sample
//! rounded once at record time): integer addition is associative, so any
//! shard split merges to exactly the same state. `min`/`max` are exact
//! under any order. The mean consequently carries a ≤ 0.5 ns per-sample
//! rounding bound, far below the simulators' nanosecond-scale latencies.

use ringsim_types::Time;
use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets. Bucket 0 holds `[0, 1)` ns and bucket
/// `b ≥ 1` holds `[2^(b-1), 2^b)` ns; the last bucket is open-ended, which
/// at 64 buckets means "anything over ~146 years" — unreachable in practice.
pub const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram over nanosecond samples.
///
/// # Examples
///
/// ```
/// use ringsim_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100.0, 200.0, 400.0, 800.0] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 375.0);
/// // Quantiles resolve to the upper edge of the containing bucket.
/// assert_eq!(h.p50(), 256.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    count: u64,
    /// Sum of samples, each rounded to integer nanoseconds at record time.
    /// Integer so that merges are exactly order-independent.
    sum_ns: u64,
    min: Option<f64>,
    max: Option<f64>,
    buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, sum_ns: 0, min: None, max: None, buckets: vec![0; BUCKETS] }
    }

    /// Rebuilds a histogram from exported parts (e.g. parsed back from a
    /// metrics JSON file). Returns `None` if the bucket vector has the
    /// wrong length or the counts are inconsistent.
    #[must_use]
    pub fn from_parts(
        count: u64,
        sum_ns: u64,
        min: Option<f64>,
        max: Option<f64>,
        buckets: Vec<u64>,
    ) -> Option<Self> {
        if buckets.len() != BUCKETS || buckets.iter().sum::<u64>() != count {
            return None;
        }
        Some(Self { count, sum_ns, min, max, buckets })
    }

    /// Index of the bucket containing a (non-negative, finite) sample.
    fn bucket_of(ns: f64) -> usize {
        let v = if ns.is_finite() && ns >= 1.0 { ns as u64 } else { 0 };
        if v == 0 {
            0
        } else {
            // v in [2^k, 2^(k+1)) lands in bucket k+1.
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper edge (exclusive) of bucket `b`, in nanoseconds.
    fn bucket_edge(b: usize) -> f64 {
        if b >= BUCKETS - 1 {
            f64::INFINITY
        } else {
            (1u64 << b) as f64
        }
    }

    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: f64) {
        let ns = if ns.is_finite() && ns > 0.0 { ns } else { 0.0 };
        self.count += 1;
        self.sum_ns += ns.round() as u64;
        self.min = Some(self.min.map_or(ns, |m| m.min(ns)));
        self.max = Some(self.max.map_or(ns, |m| m.max(ns)));
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Records a [`Time`] duration as a nanosecond sample.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.as_ns_f64());
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in integer nanoseconds (exactly mergeable).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample in nanoseconds (0 when empty). Each sample contributes
    /// with ≤ 0.5 ns rounding error.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest recorded sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// The `q`-quantile (`0 < q ≤ 1`), resolved to the upper edge of the
    /// bucket containing that rank — a conservative (over-)estimate whose
    /// error is bounded by the 2x bucket width. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_edge(b);
            }
        }
        Self::bucket_edge(BUCKETS - 1)
    }

    /// Median (see [`Self::quantile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one. Exactly associative and
    /// commutative: any shard split of a sample stream merges to the same
    /// state as recording the whole stream into one histogram.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Per-bucket counts (index `b` covers `[2^(b-1), 2^b)` ns, bucket 0 is
    /// `[0, 1)` ns).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(0.9), 0);
        assert_eq!(LatencyHistogram::bucket_of(1.0), 1);
        assert_eq!(LatencyHistogram::bucket_of(1.9), 1);
        assert_eq!(LatencyHistogram::bucket_of(2.0), 2);
        assert_eq!(LatencyHistogram::bucket_of(3.9), 2);
        assert_eq!(LatencyHistogram::bucket_of(4.0), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023.0), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024.0), 11);
        assert_eq!(LatencyHistogram::bucket_of(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [10.0, 20.0, 30.0] {
            h.record(ns);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), Some(10.0));
        assert_eq!(h.max(), Some(30.0));
    }

    #[test]
    fn quantile_upper_edges() {
        let mut h = LatencyHistogram::new();
        // 10 samples: 100 ns ×9 land in bucket 7 ([64,128)), 5000 ns ×1 in
        // bucket 13 ([4096,8192)).
        for _ in 0..9 {
            h.record(100.0);
        }
        h.record(5000.0);
        assert_eq!(h.p50(), 128.0);
        assert_eq!(h.quantile(0.90), 128.0);
        assert_eq!(h.p95(), 8192.0);
        assert_eq!(h.quantile(1.0), 8192.0);
    }

    #[test]
    fn merge_matches_whole_run() {
        let samples: Vec<f64> = (0..200).map(|i| (i * 37 % 997) as f64).collect();
        let mut whole = LatencyHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (a, b) = samples.split_at(71);
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        for &s in a {
            ha.record(s);
        }
        for &s in b {
            hb.record(s);
        }
        // Merge in both orders; both must equal the whole-run histogram.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.min(), None);
    }
}
