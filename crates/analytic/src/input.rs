use serde::{Deserialize, Serialize};

use ringsim_core::SimReport;
use ringsim_trace::Characteristics;
use ringsim_types::CoherenceEvents;

/// Per-data-reference frequencies of every transaction class, plus the
/// instruction/data mix — everything the analytical models need to know
/// about a workload.
///
/// This is the artefact the paper extracts from its trace-driven
/// simulations; here it can come from the untimed reference interpreter
/// ([`ModelInput::from_characteristics`]) or from a timed run
/// ([`ModelInput::from_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelInput {
    /// Processor count.
    pub procs: usize,
    /// Instruction references per data reference.
    pub instr_per_data: f64,
    /// Transaction-class frequencies per data reference.
    pub freqs: ClassFreqs,
}

/// Events per data reference, by class (see
/// [`CoherenceEvents`] for class semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct ClassFreqs {
    pub private_miss: f64,
    pub read_clean_local: f64,
    pub read_clean_remote: f64,
    pub read_dirty_1: f64,
    pub read_dirty_2: f64,
    pub write_nosharers_local: f64,
    pub write_nosharers_remote: f64,
    pub write_sharers_local: f64,
    pub write_sharers_remote: f64,
    pub write_dirty_1: f64,
    pub write_dirty_2: f64,
    pub upgrade_nosharers_local: f64,
    pub upgrade_nosharers_remote: f64,
    pub upgrade_sharers_local: f64,
    pub upgrade_sharers_remote: f64,
    pub writeback_local: f64,
    pub writeback_remote: f64,
}

impl ClassFreqs {
    /// Derives frequencies from aggregate event counts.
    #[must_use]
    pub fn from_events(e: &CoherenceEvents) -> Self {
        let n = e.data_refs().max(1) as f64;
        let f = |x: u64| x as f64 / n;
        Self {
            private_miss: f(e.private_misses),
            read_clean_local: f(e.read_clean_local),
            read_clean_remote: f(e.read_clean_remote),
            read_dirty_1: f(e.read_dirty_1),
            read_dirty_2: f(e.read_dirty_2),
            write_nosharers_local: f(e.write_nosharers_local),
            write_nosharers_remote: f(e.write_nosharers_remote),
            write_sharers_local: f(e.write_sharers_local),
            write_sharers_remote: f(e.write_sharers_remote),
            write_dirty_1: f(e.write_dirty_1),
            write_dirty_2: f(e.write_dirty_2),
            upgrade_nosharers_local: f(e.upgrade_nosharers_local),
            upgrade_nosharers_remote: f(e.upgrade_nosharers_remote),
            upgrade_sharers_local: f(e.upgrade_sharers_local),
            upgrade_sharers_remote: f(e.upgrade_sharers_remote),
            writeback_local: f(e.writeback_local),
            writeback_remote: f(e.writeback_remote),
        }
    }

    /// All miss-class frequencies summed (excluding upgrades).
    #[must_use]
    pub fn miss_total(&self) -> f64 {
        self.private_miss
            + self.read_clean_local
            + self.read_clean_remote
            + self.read_dirty_1
            + self.read_dirty_2
            + self.write_nosharers_local
            + self.write_nosharers_remote
            + self.write_sharers_local
            + self.write_sharers_remote
            + self.write_dirty_1
            + self.write_dirty_2
    }

    /// All upgrade-class frequencies summed.
    #[must_use]
    pub fn upgrade_total(&self) -> f64 {
        self.upgrade_nosharers_local
            + self.upgrade_nosharers_remote
            + self.upgrade_sharers_local
            + self.upgrade_sharers_remote
    }
}

impl ModelInput {
    /// Builds the model input from an untimed characterisation run.
    #[must_use]
    pub fn from_characteristics(ch: &Characteristics) -> Self {
        Self {
            procs: ch.procs,
            instr_per_data: ch.instr_per_data,
            freqs: ClassFreqs::from_events(&ch.events),
        }
    }

    /// Builds the model input from a timed simulation report.
    ///
    /// `instr_per_data` is not recorded in the report, so it must be passed
    /// alongside (it comes from the workload spec).
    #[must_use]
    pub fn from_report(report: &SimReport, instr_per_data: f64) -> Self {
        Self { procs: report.nodes, instr_per_data, freqs: ClassFreqs::from_events(&report.events) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> CoherenceEvents {
        CoherenceEvents {
            private_reads: 600,
            private_writes: 200,
            shared_reads: 150,
            shared_writes: 50,
            private_misses: 8,
            read_clean_local: 1,
            read_clean_remote: 9,
            read_dirty_1: 3,
            read_dirty_2: 2,
            write_nosharers_remote: 4,
            upgrade_sharers_remote: 5,
            writeback_remote: 6,
            ..CoherenceEvents::default()
        }
    }

    #[test]
    fn frequencies_are_per_data_ref() {
        let f = ClassFreqs::from_events(&events());
        assert!((f.private_miss - 8.0 / 1000.0).abs() < 1e-12);
        assert!((f.read_clean_remote - 9.0 / 1000.0).abs() < 1e-12);
        assert!((f.miss_total() - 27.0 / 1000.0).abs() < 1e-12);
        assert!((f.upgrade_total() - 5.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_events_give_zero_freqs() {
        let f = ClassFreqs::from_events(&CoherenceEvents::default());
        assert_eq!(f.miss_total(), 0.0);
        assert_eq!(f.upgrade_total(), 0.0);
    }
}
