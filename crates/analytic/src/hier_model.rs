use ringsim_ring::RingHierarchy;
use ringsim_types::Time;

use crate::input::ModelInput;
use crate::{fixed_point, ModelOutput};

/// Analytical model of a two-level hierarchy of snooping slotted rings
/// (the Hector/KSR1 direction discussed in the paper's related work, §5).
///
/// Transactions whose home is node-local cost only the memory access.
/// Remote transactions split by `locality` — the probability that the home
/// (and any dirty copy) lives in the requester's local ring:
///
/// * **intra-ring**: one local-ring probe revolution + access + a half-ring
///   reply, exactly like the flat snooping model but on the short ring;
/// * **inter-ring**: the probe does a full local revolution (reaching the
///   inter-ring interface), a full global revolution (snooped by every
///   IRI's filter directory), and a full revolution of the responding
///   ring; the reply travels half of each.
///
/// Contention is a fixed point over four slot pools: local probe, local
/// block, global probe and global block. In [`ModelOutput`], `probe_util`
/// reports the *local* rings' combined slot utilisation and `block_util`
/// the *global* ring's (documented re-purposing for the hierarchy).
#[derive(Debug, Clone, PartialEq)]
pub struct HierRingModel {
    hier: RingHierarchy,
    locality: f64,
    mem_latency: Time,
    supply_latency: Time,
    tolerate_writes: bool,
}

impl HierRingModel {
    /// Creates the model with uniform home placement (locality `1/k`).
    #[must_use]
    pub fn new(hier: RingHierarchy) -> Self {
        let locality = hier.uniform_locality();
        Self {
            hier,
            locality,
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
            tolerate_writes: false,
        }
    }

    /// Overrides the fraction of remote transactions that stay within the
    /// requester's local ring (clamped to `[0, 1]`); models software page
    /// placement with cluster affinity.
    #[must_use]
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality.clamp(0.0, 1.0);
        self
    }

    /// Enables the §6 write-tolerance scenario (see
    /// [`crate::RingModel::with_write_tolerance`]).
    #[must_use]
    pub fn with_write_tolerance(mut self, on: bool) -> Self {
        self.tolerate_writes = on;
        self
    }

    /// The hierarchy the model describes.
    #[must_use]
    pub fn hierarchy(&self) -> &RingHierarchy {
        &self.hier
    }

    /// Evaluates the model at a processor cycle time.
    #[must_use]
    pub fn evaluate(&self, input: &ModelInput, proc_cycle: Time) -> ModelOutput {
        let tc = self.hier.base().clock_period.as_ns_f64();
        let s_l = self.hier.local_layout().stages() as f64;
        let s_g = self.hier.global_layout().stages() as f64;
        let f_stages = self.hier.base().frame_stages() as f64;
        let rings = self.hier.local_rings() as f64;
        // Slot pools: every local ring contributes its slots; demand is
        // spread evenly (symmetric workload).
        let block_slots_per_frame = self.hier.base().block_slots_per_frame as f64;
        let probe_slots_per_frame = self.hier.base().probe_slots_per_frame as f64;
        let frames_l = s_l / f_stages;
        let frames_g = s_g / f_stages;
        let n_lp = frames_l * probe_slots_per_frame * rings;
        let n_lb = frames_l * block_slots_per_frame * rings;
        let n_gp = frames_g * probe_slots_per_frame;
        let n_gb = frames_g * block_slots_per_frame;

        let mem = self.mem_latency.as_ns_f64();
        let sup = self.supply_latency.as_ns_f64();
        let compute = (1.0 + input.instr_per_data) * proc_cycle.as_ns_f64();
        let fr = input.freqs;
        let procs = input.procs as f64;
        let loc = self.locality;

        // Per-data-ref frequencies of the flat classes, re-grouped.
        let f_node_local = fr.private_miss
            + fr.read_clean_local
            + fr.write_nosharers_local
            + fr.upgrade_nosharers_local;
        let f_read_remote = fr.read_clean_remote + fr.read_dirty_1 + fr.read_dirty_2;
        let f_write_remote = fr.write_nosharers_remote
            + fr.write_sharers_remote
            + fr.write_sharers_local
            + fr.write_dirty_1
            + fr.write_dirty_2;
        let dirty_frac = {
            let dirty = fr.read_dirty_1 + fr.read_dirty_2 + fr.write_dirty_1 + fr.write_dirty_2;
            let all = f_read_remote + f_write_remote;
            if all > 0.0 {
                dirty / all
            } else {
                0.0
            }
        };
        let f_upgrade =
            fr.upgrade_nosharers_remote + fr.upgrade_sharers_remote + fr.upgrade_sharers_local;
        let f_wb = fr.writeback_remote;

        fixed_point(|[r_lp, r_lb, r_gp, r_gb]: [f64; 4]| {
            let probe_spacing = f_stages / (probe_slots_per_frame / 2.0).max(1.0);
            let block_spacing = f_stages / block_slots_per_frame;
            let w_lp = tc * (probe_spacing / 2.0 + probe_spacing * r_lp / (1.0 - r_lp));
            let w_lb = tc * (block_spacing / 2.0 + block_spacing * r_lb / (1.0 - r_lb));
            let w_gp = tc * (probe_spacing / 2.0 + probe_spacing * r_gp / (1.0 - r_gp));
            let w_gb = tc * (block_spacing / 2.0 + block_spacing * r_gb / (1.0 - r_gb));

            let rt_l = s_l * tc;
            let rt_g = s_g * tc;
            let access = mem * (1.0 - dirty_frac) + sup * dirty_frac;

            // Latencies.
            let intra_miss = w_lp + rt_l + access + w_lb;
            let inter_miss = w_lp + rt_l + w_gp + rt_g + w_lp + rt_l + access + w_lb + w_gb;
            let intra_upg = w_lp + rt_l + f_stages * tc;
            let inter_upg = w_lp + rt_l + w_gp + rt_g + w_lp + rt_l + f_stages * tc;
            let miss_remote_lat = loc * intra_miss + (1.0 - loc) * inter_miss;
            let upg_lat = loc * intra_upg + (1.0 - loc) * inter_upg;

            let f_miss = f_node_local + f_read_remote + f_write_remote;
            let write_stall = if self.tolerate_writes { 0.0 } else { 1.0 };
            let stall = f_node_local * mem
                + f_read_remote * miss_remote_lat
                + f_write_remote * miss_remote_lat * write_stall
                + f_upgrade * upg_lat * write_stall;
            let t_ref = compute + stall;
            let proc_util = compute / t_ref;

            // Occupancies (stage-cycles per transaction).
            let f_remote = f_read_remote + f_write_remote;
            let probe_local_cycles = f_remote * (loc * s_l + (1.0 - loc) * 2.0 * s_l)
                + f_upgrade * (loc * s_l + (1.0 - loc) * 2.0 * s_l);
            let probe_global_cycles = (f_remote + f_upgrade) * (1.0 - loc) * s_g;
            let block_local_cycles = f_remote * (loc * s_l / 2.0 + (1.0 - loc) * s_l)
                + f_wb * (loc * s_l / 2.0 + (1.0 - loc) * s_l);
            let block_global_cycles = (f_remote + f_wb) * (1.0 - loc) * s_g / 2.0;

            let rate = procs / t_ref; // transactions per ns per class unit
            let r_lp_new = probe_local_cycles * rate * tc / n_lp;
            let r_lb_new = block_local_cycles * rate * tc / n_lb;
            let r_gp_new = probe_global_cycles * rate * tc / n_gp;
            let r_gb_new = block_global_cycles * rate * tc / n_gb;

            let miss_lat = if f_miss > 0.0 {
                (f_node_local * mem + (f_read_remote + f_write_remote) * miss_remote_lat) / f_miss
            } else {
                0.0
            };
            let local_util = (r_lp * n_lp + r_lb * n_lb) / (n_lp + n_lb);
            let global_util = (r_gp * n_gp + r_gb * n_gb) / (n_gp + n_gb);
            let net = (local_util * (n_lp + n_lb) + global_util * (n_gp + n_gb))
                / (n_lp + n_lb + n_gp + n_gb);
            (
                [r_lp_new, r_lb_new, r_gp_new, r_gb_new],
                ModelOutput {
                    proc_util,
                    net_util: net,
                    probe_util: local_util,
                    block_util: global_util,
                    miss_latency_ns: miss_lat,
                    upgrade_latency_ns: upg_lat,
                    iterations: 0,
                    converged: false,
                },
            )
        })
    }

    /// Evaluates a single sweep point at a whole-nanosecond processor
    /// cycle — the point-granular entry the parallel sweep engine fans out
    /// over.
    #[must_use]
    pub fn sweep_point(&self, input: &ModelInput, ns: u64) -> (Time, ModelOutput) {
        let t = Time::from_ns(ns);
        (t, self.evaluate(input, t))
    }

    /// Sweeps the processor cycle (inclusive, whole nanoseconds).
    #[must_use]
    pub fn sweep(&self, input: &ModelInput, from_ns: u64, to_ns: u64) -> Vec<(Time, ModelOutput)> {
        (from_ns..=to_ns).map(|ns| self.sweep_point(input, ns)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ClassFreqs;
    use crate::RingModel;
    use ringsim_proto::ProtocolKind;
    use ringsim_ring::RingConfig;

    fn input64() -> ModelInput {
        ModelInput {
            procs: 64,
            instr_per_data: 1.0,
            freqs: ClassFreqs {
                private_miss: 0.003,
                read_clean_remote: 0.02,
                read_dirty_1: 0.005,
                read_dirty_2: 0.004,
                write_nosharers_remote: 0.004,
                upgrade_sharers_remote: 0.004,
                writeback_remote: 0.005,
                ..ClassFreqs::default()
            },
        }
    }

    #[test]
    fn converges_and_is_sane() {
        let h = RingHierarchy::new(8, 8).unwrap();
        let out = HierRingModel::new(h).evaluate(&input64(), Time::from_ns(10));
        assert!(out.converged);
        assert!(out.proc_util > 0.0 && out.proc_util < 1.0);
        assert!(out.miss_latency_ns > 140.0);
        assert!(out.net_util > 0.0 && out.net_util < 1.0);
    }

    #[test]
    fn locality_helps() {
        let h = RingHierarchy::new(8, 8).unwrap();
        let uniform = HierRingModel::new(h.clone()).evaluate(&input64(), Time::from_ns(5));
        let clustered =
            HierRingModel::new(h).with_locality(0.9).evaluate(&input64(), Time::from_ns(5));
        assert!(clustered.proc_util > uniform.proc_util);
        assert!(clustered.miss_latency_ns < uniform.miss_latency_ns);
    }

    #[test]
    fn hierarchy_beats_flat_ring_at_64_processors() {
        // Three short revolutions beat one 200-stage revolution even with
        // uniform placement; with locality the gap widens.
        let input = input64();
        let flat = RingModel::new(RingConfig::standard_500mhz(64), ProtocolKind::Snooping)
            .evaluate(&input, Time::from_ns(10));
        let h = RingHierarchy::new(8, 8).unwrap();
        let hier = HierRingModel::new(h).evaluate(&input, Time::from_ns(10));
        assert!(
            hier.miss_latency_ns < flat.miss_latency_ns,
            "hier {} vs flat {}",
            hier.miss_latency_ns,
            flat.miss_latency_ns
        );
    }

    #[test]
    fn global_ring_is_the_hierarchys_bottleneck() {
        // With low locality and fast processors, the global ring loads up
        // much more than the local rings.
        let h = RingHierarchy::new(8, 8).unwrap();
        let out = HierRingModel::new(h).with_locality(0.1).evaluate(&input64(), Time::from_ns(2));
        assert!(
            out.block_util > out.probe_util,
            "global {} <= local {}",
            out.block_util,
            out.probe_util
        );
    }

    #[test]
    fn write_tolerance_reduces_stall() {
        let h = RingHierarchy::new(4, 8).unwrap();
        let mut input = input64();
        input.procs = 32;
        let base = HierRingModel::new(h.clone()).evaluate(&input, Time::from_ns(5));
        let tol =
            HierRingModel::new(h).with_write_tolerance(true).evaluate(&input, Time::from_ns(5));
        assert!(tol.proc_util > base.proc_util);
    }
}
