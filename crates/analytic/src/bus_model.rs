use ringsim_bus::BusConfig;
use ringsim_types::Time;

use crate::input::ModelInput;
use crate::{fixed_point, ModelOutput};

/// Analytical model of the split-transaction snooping bus.
///
/// The bus is an exclusive FIFO-served resource; the mean queueing delay per
/// grant uses the M/M/1-style approximation `W = ρ/(1-ρ) · x̄` with `x̄` the
/// mean grant length. Every miss broadcasts a request phase; remote clean
/// misses and dirty misses add a response phase; upgrades are address-only
/// transactions; remote write-backs add a data transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusModel {
    bus: BusConfig,
    mem_latency: Time,
    supply_latency: Time,
    tolerate_writes: bool,
}

struct Class {
    freq: f64,
    latency_ns: f64,
    bus_ns_addr: f64,
    bus_ns_data: f64,
    grants: f64,
    is_miss: bool,
    is_write: bool,
}

impl BusModel {
    /// Creates the model with the paper's 140 ns memory and supply times.
    #[must_use]
    pub fn new(bus: BusConfig) -> Self {
        Self {
            bus,
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
            tolerate_writes: false,
        }
    }

    /// Enables the latency-tolerance scenario of paper §6 (write buffer /
    /// weak ordering): writes and invalidations no longer stall the
    /// processor but still occupy the bus — which the paper predicts is
    /// self-defeating near saturation.
    #[must_use]
    pub fn with_write_tolerance(mut self, on: bool) -> Self {
        self.tolerate_writes = on;
        self
    }

    /// Overrides the memory latency.
    #[must_use]
    pub fn with_mem_latency(mut self, t: Time) -> Self {
        self.mem_latency = t;
        self
    }

    /// The bus configuration the model describes.
    #[must_use]
    pub fn bus(&self) -> &BusConfig {
        &self.bus
    }

    /// Evaluates the model for `input` at the given processor cycle time.
    #[must_use]
    pub fn evaluate(&self, input: &ModelInput, proc_cycle: Time) -> ModelOutput {
        let tb = self.bus.clock_period.as_ns_f64();
        let req = self.bus.request_cycles as f64 * tb;
        let resp = self.bus.response_cycles() as f64 * tb;
        let inv = self.bus.inval_cycles as f64 * tb;
        let mem = self.mem_latency.as_ns_f64();
        let sup = self.supply_latency.as_ns_f64();
        let compute = (1.0 + input.instr_per_data) * proc_cycle.as_ns_f64();
        let fr = input.freqs;
        let procs = input.procs as f64;

        fixed_point(|[rho]: [f64; 1]| {
            // Per-grant queueing delay.
            let classes = |w: f64| -> Vec<Class> {
                let local_miss = w + req + mem;
                let remote_clean = w + req + mem + w + resp;
                let dirty = w + req + sup + w + resp;
                vec![
                    Class {
                        freq: fr.private_miss + fr.read_clean_local,
                        latency_ns: local_miss,
                        bus_ns_addr: req,
                        bus_ns_data: 0.0,
                        grants: 1.0,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.write_nosharers_local + fr.write_sharers_local,
                        latency_ns: local_miss,
                        bus_ns_addr: req,
                        bus_ns_data: 0.0,
                        grants: 1.0,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.read_clean_remote,
                        latency_ns: remote_clean,
                        bus_ns_addr: req,
                        bus_ns_data: resp,
                        grants: 2.0,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.write_nosharers_remote + fr.write_sharers_remote,
                        latency_ns: remote_clean,
                        bus_ns_addr: req,
                        bus_ns_data: resp,
                        grants: 2.0,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.read_dirty_1 + fr.read_dirty_2,
                        latency_ns: dirty,
                        bus_ns_addr: req,
                        bus_ns_data: resp,
                        grants: 2.0,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.write_dirty_1 + fr.write_dirty_2,
                        latency_ns: dirty,
                        bus_ns_addr: req,
                        bus_ns_data: resp,
                        grants: 2.0,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.upgrade_nosharers_local
                            + fr.upgrade_nosharers_remote
                            + fr.upgrade_sharers_local
                            + fr.upgrade_sharers_remote,
                        latency_ns: w + inv,
                        bus_ns_addr: inv,
                        bus_ns_data: 0.0,
                        grants: 1.0,
                        is_miss: false,
                        is_write: true,
                    },
                    Class {
                        freq: fr.writeback_remote,
                        latency_ns: 0.0,
                        bus_ns_addr: 0.0,
                        bus_ns_data: resp,
                        grants: 1.0,
                        is_miss: false,
                        is_write: true,
                    },
                ]
            };
            // Mean grant length from the zero-wait class mix (independent
            // of w).
            let base = classes(0.0);
            let total_bus: f64 =
                base.iter().map(|c| c.freq * (c.bus_ns_addr + c.bus_ns_data)).sum();
            let total_grants: f64 = base.iter().map(|c| c.freq * c.grants).sum();
            let xbar = if total_grants > 0.0 { total_bus / total_grants } else { 0.0 };
            let w = rho / (1.0 - rho) * xbar;
            let classes = classes(w);

            let stall: f64 = classes
                .iter()
                .filter(|c| !(self.tolerate_writes && c.is_write))
                .map(|c| c.freq * c.latency_ns)
                .sum();
            let t_ref = compute + stall;
            let proc_util = compute / t_ref;

            let addr_demand: f64 =
                classes.iter().map(|c| c.freq * c.bus_ns_addr).sum::<f64>() * procs / t_ref;
            let data_demand: f64 =
                classes.iter().map(|c| c.freq * c.bus_ns_data).sum::<f64>() * procs / t_ref;
            let rho_new = addr_demand + data_demand;

            let miss_f: f64 = classes.iter().filter(|c| c.is_miss).map(|c| c.freq).sum();
            let miss_lat =
                classes.iter().filter(|c| c.is_miss).map(|c| c.freq * c.latency_ns).sum::<f64>()
                    / miss_f.max(1e-30);
            let upg_f = fr.upgrade_total();
            let upg_lat = if upg_f > 0.0 { w + inv } else { 0.0 };

            (
                [rho_new],
                ModelOutput {
                    proc_util,
                    net_util: rho,
                    probe_util: rho
                        * if addr_demand + data_demand > 0.0 {
                            addr_demand / (addr_demand + data_demand)
                        } else {
                            0.0
                        },
                    block_util: rho
                        * if addr_demand + data_demand > 0.0 {
                            data_demand / (addr_demand + data_demand)
                        } else {
                            0.0
                        },
                    miss_latency_ns: miss_lat,
                    upgrade_latency_ns: upg_lat,
                    iterations: 0,
                    converged: false,
                },
            )
        })
    }

    /// Evaluates a single sweep point at a whole-nanosecond processor
    /// cycle — the point-granular entry the parallel sweep engine fans out
    /// over.
    #[must_use]
    pub fn sweep_point(&self, input: &ModelInput, ns: u64) -> (Time, ModelOutput) {
        let t = Time::from_ns(ns);
        (t, self.evaluate(input, t))
    }

    /// Sweeps the processor cycle (inclusive, whole nanoseconds).
    #[must_use]
    pub fn sweep(&self, input: &ModelInput, from_ns: u64, to_ns: u64) -> Vec<(Time, ModelOutput)> {
        (from_ns..=to_ns).map(|ns| self.sweep_point(input, ns)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ClassFreqs;

    fn busy_input(procs: usize) -> ModelInput {
        ModelInput {
            procs,
            instr_per_data: 2.0,
            freqs: ClassFreqs {
                private_miss: 0.002,
                read_clean_remote: 0.015,
                read_dirty_1: 0.005,
                write_nosharers_remote: 0.005,
                upgrade_sharers_remote: 0.005,
                writeback_remote: 0.005,
                ..ClassFreqs::default()
            },
        }
    }

    #[test]
    fn converges_and_is_sane() {
        let m = BusModel::new(BusConfig::bus_100mhz(8));
        let out = m.evaluate(&busy_input(8), Time::from_ns(20));
        assert!(out.converged);
        assert!(out.proc_util > 0.0 && out.proc_util < 1.0);
        assert!(out.net_util > 0.0 && out.net_util <= 1.0);
        assert!(out.miss_latency_ns > mem_floor());
    }

    fn mem_floor() -> f64 {
        140.0
    }

    #[test]
    fn saturates_with_many_fast_processors() {
        let m = BusModel::new(BusConfig::bus_50mhz(32));
        let out = m.evaluate(&busy_input(32), Time::from_ns(2));
        assert!(out.net_util > 0.95, "util {}", out.net_util);
        assert!(out.proc_util < 0.3, "proc util {}", out.proc_util);
        // Latency explodes at saturation.
        assert!(out.miss_latency_ns > 1_000.0);
    }

    #[test]
    fn faster_bus_clock_helps() {
        let slow =
            BusModel::new(BusConfig::bus_50mhz(16)).evaluate(&busy_input(16), Time::from_ns(5));
        let fast =
            BusModel::new(BusConfig::bus_100mhz(16)).evaluate(&busy_input(16), Time::from_ns(5));
        assert!(fast.proc_util > slow.proc_util);
        assert!(fast.miss_latency_ns < slow.miss_latency_ns);
    }

    #[test]
    fn bus_latency_constant_until_contention() {
        // With a single light processor pair the latency is near the
        // contention-free floor: request + mem + response.
        let mut input = busy_input(2);
        input.freqs = ClassFreqs { read_clean_remote: 0.0005, ..ClassFreqs::default() };
        let cfg = BusConfig::bus_100mhz(2);
        let m = BusModel::new(cfg);
        let out = m.evaluate(&input, Time::from_ns(20));
        let floor = (cfg.request_cycles + cfg.response_cycles()) as f64
            * cfg.clock_period.as_ns_f64()
            + 140.0;
        assert!((out.miss_latency_ns - floor).abs() < 5.0, "{} vs {floor}", out.miss_latency_ns);
    }

    #[test]
    fn sweep_monotone() {
        // Near saturation the damped fixed point leaves small numerical
        // ripples, so allow a tolerance proportional to the value.
        let m = BusModel::new(BusConfig::bus_100mhz(16));
        let pts = m.sweep(&busy_input(16), 1, 20);
        for w in pts.windows(2) {
            assert!(
                w[1].1.proc_util >= w[0].1.proc_util * 0.98,
                "{} then {}",
                w[0].1.proc_util,
                w[1].1.proc_util
            );
        }
        // And the sweep endpoints are unambiguous.
        assert!(pts[19].1.proc_util > pts[0].1.proc_util);
    }
}
