use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_types::Time;

use crate::input::ModelInput;
use crate::{fixed_point, ModelOutput};

/// Analytical model of a cache-coherent slotted ring (snooping or full-map
/// directory).
///
/// Latency per transaction class = slot-alignment and contention waits
/// (geometric skip of busy slots) + ring travel (stage distances, with the
/// expected distance of a unicast hop taken as half a revolution) + the
/// fixed 140 ns memory / dirty-cache supply times. Slot contention is the
/// fixed point of the implied message rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingModel {
    ring: RingConfig,
    protocol: ProtocolKind,
    mem_latency: Time,
    supply_latency: Time,
    tolerate_writes: bool,
}

/// One transaction class: frequency, latency, slot occupancies, whether it
/// counts as a miss (vs upgrade) for reporting, and whether the processor
/// stalls for it (writes/upgrades stop blocking under write tolerance).
struct Class {
    freq: f64,
    latency_ns: f64,
    probe_cycles: f64,
    block_cycles: f64,
    is_miss: bool,
    is_write: bool,
}

impl RingModel {
    /// Creates the model with the paper's 140 ns memory and supply times.
    ///
    /// Only the paper's slotted-ring protocols are modelled:
    /// [`ProtocolKind::Snooping`] and [`ProtocolKind::Directory`]. Passing
    /// any other kind makes [`RingModel::solve`] panic.
    #[must_use]
    pub fn new(ring: RingConfig, protocol: ProtocolKind) -> Self {
        Self {
            ring,
            protocol,
            mem_latency: Time::from_ns(140),
            supply_latency: Time::from_ns(140),
            tolerate_writes: false,
        }
    }

    /// Enables the latency-tolerance scenario of paper §6: write misses and
    /// invalidations no longer stall the processor (write buffer / weak
    /// ordering), but their messages still load the ring.
    #[must_use]
    pub fn with_write_tolerance(mut self, on: bool) -> Self {
        self.tolerate_writes = on;
        self
    }

    /// Overrides the memory latency.
    #[must_use]
    pub fn with_mem_latency(mut self, t: Time) -> Self {
        self.mem_latency = t;
        self
    }

    /// Overrides the dirty-cache supply latency.
    #[must_use]
    pub fn with_supply_latency(mut self, t: Time) -> Self {
        self.supply_latency = t;
        self
    }

    /// The ring configuration the model describes.
    #[must_use]
    pub fn ring(&self) -> &RingConfig {
        &self.ring
    }

    /// Evaluates the model for `input` at the given processor cycle time.
    ///
    /// # Panics
    ///
    /// Panics if the ring configuration is invalid.
    #[must_use]
    pub fn evaluate(&self, input: &ModelInput, proc_cycle: Time) -> ModelOutput {
        let layout = self.ring.layout().expect("valid ring config");
        let tc = self.ring.clock_period.as_ns_f64();
        let s = layout.stages() as f64;
        let f_stages = layout.frame_stages() as f64;
        let n_probe =
            (layout.slot_count() - layout.slots_of_kind(ringsim_ring::SlotKind::Block)) as f64;
        let n_block = layout.slots_of_kind(ringsim_ring::SlotKind::Block) as f64;
        // Slots of a matching parity pass a node every `spacing` cycles.
        let ppf = self.ring.probe_slots_per_frame as f64;
        let probe_spacing = if self.ring.probe_slots_per_frame >= 2 {
            f_stages / (ppf / 2.0).floor().max(1.0)
        } else {
            f_stages
        };
        let block_spacing = f_stages / self.ring.block_slots_per_frame as f64;

        let mem = self.mem_latency.as_ns_f64();
        let sup = self.supply_latency.as_ns_f64();
        let tproc = proc_cycle.as_ns_f64();
        let compute = (1.0 + input.instr_per_data) * tproc;
        let fr = input.freqs;
        let procs = input.procs as f64;

        let out = fixed_point(|[rho_p, rho_b]: [f64; 2]| {
            // Mean wait for a free slot: half a spacing for alignment, plus
            // geometric skipping of busy slots.
            let w_p = tc * (probe_spacing / 2.0 + probe_spacing * rho_p / (1.0 - rho_p));
            let w_b = tc * (block_spacing / 2.0 + block_spacing * rho_b / (1.0 - rho_b));
            let ring_round = s * tc;
            let half = s / 2.0;

            let classes: Vec<Class> = match self.protocol {
                ProtocolKind::Snooping => {
                    let probe_round = w_p + ring_round;
                    vec![
                        Class {
                            freq: fr.private_miss,
                            latency_ns: mem,
                            probe_cycles: 0.0,
                            block_cycles: 0.0,
                            is_miss: true,
                            is_write: false,
                        },
                        Class {
                            freq: fr.read_clean_local,
                            latency_ns: mem,
                            probe_cycles: 0.0,
                            block_cycles: 0.0,
                            is_miss: true,
                            is_write: false,
                        },
                        Class {
                            freq: fr.read_clean_remote,
                            latency_ns: probe_round + mem + w_b,
                            probe_cycles: s,
                            block_cycles: half,
                            is_miss: true,
                            is_write: false,
                        },
                        Class {
                            freq: fr.read_dirty_1 + fr.read_dirty_2,
                            latency_ns: probe_round + sup + w_b,
                            probe_cycles: s,
                            block_cycles: half + half,
                            is_miss: true,
                            is_write: false,
                        },
                        Class {
                            freq: fr.write_nosharers_local + fr.write_sharers_local,
                            latency_ns: w_p + ring_round.max(mem),
                            probe_cycles: s,
                            block_cycles: 0.0,
                            is_miss: true,
                            is_write: true,
                        },
                        Class {
                            freq: fr.write_nosharers_remote + fr.write_sharers_remote,
                            latency_ns: probe_round + mem + w_b,
                            probe_cycles: s,
                            block_cycles: half,
                            is_miss: true,
                            is_write: true,
                        },
                        Class {
                            freq: fr.write_dirty_1 + fr.write_dirty_2,
                            latency_ns: probe_round + sup + w_b,
                            probe_cycles: s,
                            block_cycles: half,
                            is_miss: true,
                            is_write: true,
                        },
                        Class {
                            freq: fr.upgrade_nosharers_local + fr.upgrade_sharers_local,
                            latency_ns: w_p + ring_round,
                            probe_cycles: s,
                            block_cycles: 0.0,
                            is_miss: false,
                            is_write: true,
                        },
                        Class {
                            freq: fr.upgrade_nosharers_remote + fr.upgrade_sharers_remote,
                            latency_ns: w_p + ring_round + f_stages * tc,
                            probe_cycles: s,
                            block_cycles: 0.0,
                            is_miss: false,
                            is_write: true,
                        },
                        Class {
                            freq: fr.writeback_remote,
                            latency_ns: 0.0,
                            probe_cycles: 0.0,
                            block_cycles: half,
                            is_miss: false,
                            is_write: true,
                        },
                    ]
                }
                ProtocolKind::Directory => vec![
                    Class {
                        freq: fr.private_miss,
                        latency_ns: mem,
                        probe_cycles: 0.0,
                        block_cycles: 0.0,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.read_clean_local,
                        latency_ns: mem,
                        probe_cycles: 0.0,
                        block_cycles: 0.0,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.read_clean_remote,
                        latency_ns: w_p + w_b + ring_round + mem,
                        probe_cycles: half,
                        block_cycles: half,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.read_dirty_1 + fr.write_dirty_1,
                        latency_ns: 2.0 * w_p + w_b + ring_round + mem + sup,
                        probe_cycles: s,
                        block_cycles: half + half,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.read_dirty_2 + fr.write_dirty_2,
                        latency_ns: 2.0 * w_p + w_b + 2.0 * ring_round + mem + sup,
                        probe_cycles: 1.5 * s,
                        block_cycles: half + half,
                        is_miss: true,
                        is_write: false,
                    },
                    Class {
                        freq: fr.write_nosharers_local,
                        latency_ns: mem,
                        probe_cycles: 0.0,
                        block_cycles: 0.0,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.write_nosharers_remote,
                        latency_ns: w_p + w_b + ring_round + mem,
                        probe_cycles: half,
                        block_cycles: half,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.write_sharers_local,
                        latency_ns: mem + w_p + ring_round,
                        probe_cycles: s,
                        block_cycles: 0.0,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.write_sharers_remote,
                        latency_ns: 2.0 * w_p + w_b + 2.0 * ring_round + mem,
                        probe_cycles: 1.5 * s,
                        block_cycles: half,
                        is_miss: true,
                        is_write: true,
                    },
                    Class {
                        freq: fr.upgrade_nosharers_local,
                        latency_ns: mem,
                        probe_cycles: 0.0,
                        block_cycles: 0.0,
                        is_miss: false,
                        is_write: true,
                    },
                    Class {
                        freq: fr.upgrade_nosharers_remote,
                        latency_ns: 2.0 * w_p + ring_round + mem,
                        probe_cycles: s,
                        block_cycles: 0.0,
                        is_miss: false,
                        is_write: true,
                    },
                    Class {
                        freq: fr.upgrade_sharers_local,
                        latency_ns: mem + w_p + ring_round,
                        probe_cycles: s,
                        block_cycles: 0.0,
                        is_miss: false,
                        is_write: true,
                    },
                    Class {
                        freq: fr.upgrade_sharers_remote,
                        latency_ns: 3.0 * w_p + 2.0 * ring_round + mem,
                        probe_cycles: 2.0 * s,
                        block_cycles: 0.0,
                        is_miss: false,
                        is_write: true,
                    },
                    Class {
                        freq: fr.writeback_remote,
                        latency_ns: 0.0,
                        probe_cycles: 0.0,
                        block_cycles: half,
                        is_miss: false,
                        is_write: true,
                    },
                ],
                ProtocolKind::Sci | ProtocolKind::Mesi | ProtocolKind::Dragon => panic!(
                    "RingModel covers the paper's slotted-ring protocols \
                     (snooping/directory), not {:?}",
                    self.protocol
                ),
            };

            // Mean time per data reference: compute plus blocking stalls
            // (write-backs never block; writes and upgrades stop blocking
            // under write tolerance, though their traffic remains).
            let stall: f64 = classes
                .iter()
                .filter(|c| !(self.tolerate_writes && c.is_write))
                .map(|c| c.freq * c.latency_ns)
                .sum();
            let t_ref = compute + stall;
            let proc_util = compute / t_ref;

            // Implied slot occupancies: each node generates
            // `freq / t_ref` events/ns; every event occupies slot-cycles
            // for its travel; one slot provides one slot-cycle per tc.
            let probe_demand: f64 =
                classes.iter().map(|c| c.freq * c.probe_cycles).sum::<f64>() * procs / t_ref;
            let block_demand: f64 =
                classes.iter().map(|c| c.freq * c.block_cycles).sum::<f64>() * procs / t_ref;
            let rho_p_new = probe_demand * tc / n_probe;
            let rho_b_new = block_demand * tc / n_block;

            let miss_f: f64 = classes.iter().filter(|c| c.is_miss).map(|c| c.freq).sum();
            let miss_lat: f64 =
                classes.iter().filter(|c| c.is_miss).map(|c| c.freq * c.latency_ns).sum::<f64>()
                    / miss_f.max(1e-30);
            let upg_f: f64 =
                classes.iter().filter(|c| !c.is_miss && c.latency_ns > 0.0).map(|c| c.freq).sum();
            let upg_lat: f64 = classes
                .iter()
                .filter(|c| !c.is_miss && c.latency_ns > 0.0)
                .map(|c| c.freq * c.latency_ns)
                .sum::<f64>()
                / upg_f.max(1e-30);

            let net = (rho_p * n_probe + rho_b * n_block) / (n_probe + n_block);
            (
                [rho_p_new, rho_b_new],
                ModelOutput {
                    proc_util,
                    net_util: net,
                    probe_util: rho_p,
                    block_util: rho_b,
                    miss_latency_ns: miss_lat,
                    upgrade_latency_ns: upg_lat,
                    iterations: 0,
                    converged: false,
                },
            )
        });
        out
    }

    /// Evaluates a single sweep point at a whole-nanosecond processor
    /// cycle — the point-granular entry the parallel sweep engine fans out
    /// over.
    #[must_use]
    pub fn sweep_point(&self, input: &ModelInput, ns: u64) -> (Time, ModelOutput) {
        let t = Time::from_ns(ns);
        (t, self.evaluate(input, t))
    }

    /// Sweeps the processor cycle from `from` to `to` (inclusive, in whole
    /// nanoseconds) — the x-axis of Figures 3, 4 and 6.
    #[must_use]
    pub fn sweep(&self, input: &ModelInput, from_ns: u64, to_ns: u64) -> Vec<(Time, ModelOutput)> {
        (from_ns..=to_ns).map(|ns| self.sweep_point(input, ns)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ClassFreqs;

    fn demo_input(procs: usize) -> ModelInput {
        ModelInput {
            procs,
            instr_per_data: 2.0,
            freqs: ClassFreqs {
                private_miss: 0.002,
                read_clean_local: 0.001,
                read_clean_remote: 0.012,
                read_dirty_1: 0.004,
                read_dirty_2: 0.003,
                write_nosharers_remote: 0.004,
                write_sharers_remote: 0.002,
                write_dirty_1: 0.002,
                write_dirty_2: 0.001,
                upgrade_nosharers_remote: 0.002,
                upgrade_sharers_remote: 0.004,
                writeback_remote: 0.004,
                ..ClassFreqs::default()
            },
        }
    }

    fn model(protocol: ProtocolKind, procs: usize) -> RingModel {
        RingModel::new(RingConfig::standard_500mhz(procs), protocol)
    }

    #[test]
    fn converges_and_is_sane() {
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let out = model(protocol, 16).evaluate(&demo_input(16), Time::from_ns(20));
            assert!(out.converged, "{protocol}: did not converge");
            assert!(out.proc_util > 0.0 && out.proc_util < 1.0);
            assert!(out.net_util > 0.0 && out.net_util < 1.0);
            assert!(out.miss_latency_ns > 140.0, "{protocol}: {}", out.miss_latency_ns);
        }
    }

    #[test]
    fn faster_processors_lower_utilisation_raise_ring_load() {
        let m = model(ProtocolKind::Snooping, 16);
        let slow = m.evaluate(&demo_input(16), Time::from_ns(20));
        let fast = m.evaluate(&demo_input(16), Time::from_ns(2));
        assert!(fast.proc_util < slow.proc_util);
        assert!(fast.net_util > slow.net_util);
        assert!(fast.miss_latency_ns >= slow.miss_latency_ns);
    }

    #[test]
    fn snooping_beats_directory_on_dirty_heavy_mixes() {
        // With a large 2-cycle miss population, the paper finds snooping's
        // position-independent single traversal wins at low load.
        let input = demo_input(16);
        let s = model(ProtocolKind::Snooping, 16).evaluate(&input, Time::from_ns(20));
        let d = model(ProtocolKind::Directory, 16).evaluate(&input, Time::from_ns(20));
        assert!(
            s.miss_latency_ns < d.miss_latency_ns,
            "snooping {} vs directory {}",
            s.miss_latency_ns,
            d.miss_latency_ns
        );
        // But snooping always loads the ring more (broadcast probes).
        assert!(s.net_util > d.net_util);
    }

    #[test]
    fn slower_ring_clock_raises_latency() {
        let fast = RingModel::new(RingConfig::standard_500mhz(16), ProtocolKind::Snooping)
            .evaluate(&demo_input(16), Time::from_ns(10));
        let slow = RingModel::new(RingConfig::standard_250mhz(16), ProtocolKind::Snooping)
            .evaluate(&demo_input(16), Time::from_ns(10));
        assert!(slow.miss_latency_ns > fast.miss_latency_ns);
        assert!(slow.proc_util < fast.proc_util);
    }

    #[test]
    fn sweep_covers_range() {
        let m = model(ProtocolKind::Directory, 8);
        let pts = m.sweep(&demo_input(8), 1, 20);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[0].0, Time::from_ns(1));
        assert_eq!(pts[19].0, Time::from_ns(20));
        // Utilisation is monotone non-decreasing in processor cycle time.
        for w in pts.windows(2) {
            assert!(w[1].1.proc_util >= w[0].1.proc_util - 1e-9);
        }
    }

    #[test]
    fn ring_never_saturates_on_modest_load() {
        // Paper §6: the ring stays below saturation in all simulated
        // configurations.
        let m = model(ProtocolKind::Snooping, 8);
        for ns in [1u64, 2, 5, 10, 20] {
            let out = m.evaluate(&demo_input(8), Time::from_ns(ns));
            assert!(out.net_util < 0.9, "{ns} ns: util {}", out.net_util);
        }
    }
}
