use serde::{Deserialize, Serialize};

use ringsim_bus::BusConfig;
use ringsim_proto::ProtocolKind;
use ringsim_ring::RingConfig;
use ringsim_types::Time;

use crate::bus_model::BusModel;
use crate::input::ModelInput;
use crate::ring_model::RingModel;

/// Result of the Table 4 solve: the bus clock needed to match a ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// The matching bus clock period.
    pub bus_period: Time,
    /// Processor utilisation of the reference ring system.
    pub ring_proc_util: f64,
    /// Processor utilisation of the matched bus system (≈ ring's).
    pub bus_proc_util: f64,
    /// Ring slot utilisation at the reference point.
    pub ring_net_util: f64,
    /// Bus utilisation at the matched clock.
    pub bus_net_util: f64,
}

/// Finds the bus clock period at which a 64-bit split-transaction bus
/// reaches the same processor utilisation (hence the same program execution
/// time) as the given slotted-ring configuration — the solve behind the
/// paper's Table 4.
///
/// The search is a bisection over the bus period: utilisation decreases
/// monotonically as the bus slows down.
///
/// # Examples
///
/// ```
/// use ringsim_analytic::{match_bus_clock, ModelInput, ClassFreqs};
/// use ringsim_proto::ProtocolKind;
/// use ringsim_ring::RingConfig;
/// use ringsim_types::Time;
///
/// let input = ModelInput {
///     procs: 8,
///     instr_per_data: 2.0,
///     freqs: ClassFreqs { read_clean_remote: 0.02, ..ClassFreqs::default() },
/// };
/// let m = match_bus_clock(
///     &input,
///     RingConfig::standard_500mhz(8),
///     ProtocolKind::Snooping,
///     Time::from_ns(10), // 100 MIPS processors
/// );
/// assert!((m.bus_proc_util - m.ring_proc_util).abs() < 1e-3);
/// ```
#[must_use]
pub fn match_bus_clock(
    input: &ModelInput,
    ring: RingConfig,
    protocol: ProtocolKind,
    proc_cycle: Time,
) -> MatchResult {
    let ring_out = RingModel::new(ring, protocol).evaluate(input, proc_cycle);
    let target = ring_out.proc_util;
    let base = BusConfig::bus_50mhz(input.procs);

    let eval = |period_ps: u64| {
        let cfg = base.with_period(Time::from_ps(period_ps.max(1)));
        BusModel::new(cfg).evaluate(input, proc_cycle)
    };

    // Bisect on the period: small period -> fast bus -> high proc util.
    let mut lo: u64 = 10; // 0.01 ns: effectively a free bus
    let mut hi: u64 = 1_000_000; // 1 us: effectively no bus
    for _ in 0..64 {
        let mid = (lo + hi) / 2;
        let u = eval(mid).proc_util;
        if u > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1 {
            break;
        }
    }
    let period = Time::from_ps(lo);
    let bus_out = eval(lo);
    MatchResult {
        bus_period: period,
        ring_proc_util: target,
        bus_proc_util: bus_out.proc_util,
        ring_net_util: ring_out.net_util,
        bus_net_util: bus_out.net_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::ClassFreqs;

    fn input(procs: usize) -> ModelInput {
        ModelInput {
            procs,
            instr_per_data: 2.0,
            freqs: ClassFreqs {
                private_miss: 0.002,
                read_clean_remote: 0.015,
                read_dirty_1: 0.004,
                read_dirty_2: 0.003,
                write_nosharers_remote: 0.004,
                upgrade_sharers_remote: 0.004,
                writeback_remote: 0.004,
                ..ClassFreqs::default()
            },
        }
    }

    #[test]
    fn match_is_tight() {
        let m = match_bus_clock(
            &input(16),
            RingConfig::standard_500mhz(16),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        assert!(
            (m.bus_proc_util - m.ring_proc_util).abs() < 5e-3,
            "bus {} vs ring {}",
            m.bus_proc_util,
            m.ring_proc_util
        );
        assert!(m.bus_period > Time::ZERO);
    }

    #[test]
    fn matching_bus_is_busier_than_ring() {
        // Paper: the bus matching a ring runs at much higher utilisation.
        let m = match_bus_clock(
            &input(16),
            RingConfig::standard_500mhz(16),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        assert!(
            m.bus_net_util > m.ring_net_util,
            "bus {} vs ring {}",
            m.bus_net_util,
            m.ring_net_util
        );
    }

    #[test]
    fn faster_rings_and_processors_demand_faster_buses() {
        let slow_ring = match_bus_clock(
            &input(16),
            RingConfig::standard_250mhz(16),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        let fast_ring = match_bus_clock(
            &input(16),
            RingConfig::standard_500mhz(16),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        assert!(fast_ring.bus_period <= slow_ring.bus_period);

        let fast_proc = match_bus_clock(
            &input(16),
            RingConfig::standard_500mhz(16),
            ProtocolKind::Snooping,
            Time::from_ps(2_500), // 400 MIPS
        );
        assert!(fast_proc.bus_period <= fast_ring.bus_period);
    }

    #[test]
    fn more_processors_demand_faster_buses() {
        let p8 = match_bus_clock(
            &input(8),
            RingConfig::standard_500mhz(8),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        let p32 = match_bus_clock(
            &input(32),
            RingConfig::standard_500mhz(32),
            ProtocolKind::Snooping,
            Time::from_ns(10),
        );
        assert!(p32.bus_period < p8.bus_period);
    }
}
