//! Iterative analytical performance models — the "hybrid methodology" of
//! paper §4.0.
//!
//! The paper runs detailed trace-driven simulations at one design point to
//! extract per-benchmark event frequencies, then uses fast analytical
//! models, iterated to a fixed point in the style of Menasce & Barroso, to
//! sweep the design space (processor speed 1–20 ns, ring and bus clocks).
//! This crate is that second half:
//!
//! * [`ModelInput`] — per-benchmark transaction-class frequencies, obtained
//!   from either the untimed reference interpreter or a timed simulation,
//! * [`RingModel`] — snooping or directory protocol on the slotted ring,
//! * [`BusModel`] — the split-transaction snooping bus,
//! * [`match_bus_clock`] — the Table 4 solver: the bus clock needed to
//!   equal a ring configuration's processor utilisation.
//!
//! Each model computes per-class latencies from the current contention
//! estimate, derives the implied transaction rates, recomputes contention,
//! and iterates (with damping) until the processor utilisation converges.
//! The paper reports model-vs-simulation agreement within 15% on latencies
//! and 5% on utilisations; `EXPERIMENTS.md` records ours.
//!
//! # Examples
//!
//! ```
//! use ringsim_analytic::{ModelInput, RingModel};
//! use ringsim_proto::ProtocolKind;
//! use ringsim_ring::RingConfig;
//! use ringsim_trace::{characterize, WorkloadSpec};
//! use ringsim_types::Time;
//!
//! let ch = characterize(&WorkloadSpec::demo(8).with_refs(20_000)).unwrap();
//! let input = ModelInput::from_characteristics(&ch);
//! let model = RingModel::new(RingConfig::standard_500mhz(8), ProtocolKind::Snooping);
//! let out = model.evaluate(&input, Time::from_ns(20));
//! assert!(out.converged);
//! assert!(out.proc_util > 0.0 && out.proc_util <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus_model;
mod hier_model;
mod input;
mod match_solver;
mod ring_model;

pub use bus_model::BusModel;
pub use hier_model::HierRingModel;
pub use input::{ClassFreqs, ModelInput};
pub use match_solver::{match_bus_clock, MatchResult};
pub use ring_model::RingModel;

use serde::{Deserialize, Serialize};

/// Result of one analytical model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelOutput {
    /// Fraction of time a processor executes (0–1).
    pub proc_util: f64,
    /// Interconnect utilisation (ring slot occupancy or bus busy fraction).
    pub net_util: f64,
    /// Probe-slot (ring) or address-phase (bus) utilisation.
    pub probe_util: f64,
    /// Block-slot (ring) or data-phase (bus) utilisation.
    pub block_util: f64,
    /// Mean miss latency in nanoseconds.
    pub miss_latency_ns: f64,
    /// Mean upgrade (invalidation) latency in nanoseconds.
    pub upgrade_latency_ns: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Whether the iteration converged before the cap.
    pub converged: bool,
}

/// Shared fixed-point driver over a small vector of contention estimates
/// (e.g. probe-slot and block-slot utilisation): given a step function that
/// maps the current estimates to `(implied_estimates, output)`, iterate with
/// damping until the estimates stabilise.
pub(crate) fn fixed_point<const N: usize, F>(mut step: F) -> ModelOutput
where
    F: FnMut([f64; N]) -> ([f64; N], ModelOutput),
{
    const MAX_ITERS: usize = 2_000;
    const TOL: f64 = 1e-8;
    let mut rho = [0.0; N];
    let (mut implied, mut out) = step(rho);
    for i in 0..MAX_ITERS {
        // Diminishing step size: heavy-load points make the map oscillate,
        // and a shrinking step forces the averaged iterates to settle on
        // the unique self-consistent utilisation.
        let alpha = 0.5 / (1.0 + i as f64 / 40.0);
        let mut delta = 0.0f64;
        for k in 0..N {
            let next = (1.0 - alpha) * rho[k] + alpha * implied[k].clamp(0.0, MAX_RHO);
            delta = delta.max((next - rho[k]).abs());
            rho[k] = next;
        }
        let (ni, no) = step(rho);
        implied = ni;
        out = no;
        if delta < TOL {
            return ModelOutput { iterations: i + 1, converged: true, ..out };
        }
    }
    ModelOutput { iterations: MAX_ITERS, converged: false, ..out }
}

/// Cap on the utilisation estimate fed back into waiting-time formulas
/// (keeps `1/(1-rho)` finite at saturation).
pub(crate) const MAX_RHO: f64 = 0.995;
