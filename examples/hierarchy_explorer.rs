//! Exploring two-level ring hierarchies (the Hector/KSR1 direction from the
//! paper's related work): model and message-level simulation side by side.
//!
//! Run with `cargo run --release --example hierarchy_explorer`.

use ringsim::analytic::{ClassFreqs, HierRingModel, ModelInput};
use ringsim::core::{HierNetConfig, HierNetSim};
use ringsim::ring::RingHierarchy;
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let think = Time::from_ns(800);
    println!("64 processors as two-level ring hierarchies; one remote transaction per");
    println!("{think} of compute; columns are (simulated / modelled).");
    println!("{:-<78}", "");
    println!(
        "{:<9} {:>9} | {:>21} | {:>21}",
        "topology", "locality", "latency ns (sim/mod)", "global util % (s/m)"
    );
    for (rings, per) in [(4usize, 16usize), (8, 8), (16, 4)] {
        let hier = RingHierarchy::new(rings, per)?;
        for locality in [hier.uniform_locality(), 0.5, 0.9] {
            // Simulate.
            let mut cfg = HierNetConfig::new(hier.clone());
            cfg.think_time = think;
            cfg.locality = locality;
            cfg.txns_per_node = 200;
            let sim = HierNetSim::new(cfg)?.run();
            // Model the same closed loop: one remote transaction per data
            // reference, one reference per `think` of compute.
            let input = ModelInput {
                procs: rings * per,
                instr_per_data: 0.0,
                freqs: ClassFreqs { read_clean_remote: 1.0, ..ClassFreqs::default() },
            };
            let model =
                HierRingModel::new(hier.clone()).with_locality(locality).evaluate(&input, think);
            println!(
                "{:<9} {:>8.0}% | {:>9.0} / {:>9.0} | {:>9.1} / {:>9.1}",
                format!("{rings}x{per}"),
                100.0 * locality,
                sim.latency.mean(),
                model.miss_latency_ns,
                100.0 * sim.global_util,
                100.0 * model.block_util,
            );
        }
    }
    println!();
    println!("higher home locality keeps traffic off the global ring and shortens paths;");
    println!("the analytic model tracks the slot-level simulation across the sweep.");
    Ok(())
}
