//! The paper's trace-driven workflow, end to end: capture a workload once,
//! save it to disk, and replay the *identical* reference streams against
//! four different architectures.
//!
//! Run with `cargo run --release --example trace_workflow`.

use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{Benchmark, RecordedTrace};
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. capture the trace (as CacheMire captured SPLASH runs in 1993).
    let spec = Benchmark::Mp3d.spec(8)?.with_refs(15_000);
    let trace = RecordedTrace::capture(&spec)?;
    println!("captured {} references across {} processors", trace.total_refs(), trace.procs());

    // 2. persist and reload — the replay is bit-identical.
    let path = std::env::temp_dir().join("mp3d8.rstrace");
    trace.save(&path)?;
    let trace = RecordedTrace::load(&path)?;
    println!("trace file: {} ({} KiB)", path.display(), std::fs::metadata(&path)?.len() / 1024);
    std::fs::remove_file(&path).ok();

    // 3. replay against four architectures.
    let proc = Time::from_ns(10); // 100 MIPS
    println!();
    println!(
        "{:<26} | {:>10} {:>10} {:>14}",
        "architecture", "proc util%", "net util%", "miss lat (ns)"
    );
    println!("{:-<66}", "");
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::builder(protocol, 8).proc_cycle(proc).build()?;
        let r = RingSystem::new(cfg, trace.workload())?.run();
        println!(
            "{:<26} | {:>10.1} {:>10.1} {:>14.0}",
            format!("ring 500 MHz / {protocol}"),
            100.0 * r.proc_util,
            100.0 * r.ring_util,
            r.miss_latency_ns(),
        );
    }
    for (label, cfg) in [
        ("bus 100 MHz / snooping", BusSystemConfig::bus_100mhz(8)),
        ("bus 50 MHz / snooping", BusSystemConfig::bus_50mhz(8)),
    ] {
        let r = BusSystem::new(cfg.with_proc_cycle(proc), trace.workload())?.run();
        println!(
            "{:<26} | {:>10.1} {:>10.1} {:>14.0}",
            label,
            100.0 * r.proc_util,
            100.0 * r.ring_util,
            r.miss_latency_ns(),
        );
    }
    println!();
    println!("every row consumed exactly the same per-processor reference sequences");
    Ok(())
}
