//! Building a custom synthetic workload: dial in a sharing pattern, verify
//! its characteristics against your targets, then simulate it.
//!
//! Run with `cargo run --release --example custom_workload`.

use ringsim::core::{RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{characterize, Workload, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A migratory-heavy workload: think of a particle simulation where each
    // record is updated by whichever processor owns the particle's cell.
    // The builder starts from the demo defaults and validates at build().
    let spec = WorkloadSpec::builder(8)
        .name("my-particles.8")
        .warmup_refs(5_000)
        .instr_per_data(1.5)
        .shared_frac(0.40)
        .private_write_frac(0.25)
        .private_cold_frac(0.002)
        .private_pools(1024, 1 << 18)
        .pool_mix(0.15, 0.05, 0.70, 0.10) // read-only, stream, migratory, prod-cons
        .pool_blocks(192, 192, 96)
        .migratory(6, 0.6)
        .seed(7)
        .build()?;

    // 1. Characterise it (untimed, instantaneous coherence).
    let ch = characterize(&spec)?;
    let e = ch.events;
    println!("characteristics of {}:", spec.name);
    println!("  total miss rate  : {:5.2} %", 100.0 * e.total_miss_rate());
    println!("  shared miss rate : {:5.2} %", 100.0 * e.shared_miss_rate());
    println!("  dirty-miss frac  : {:5.1} %", 100.0 * e.dirty_miss_frac());
    println!("  invalidations    : {} ({} copies)", e.upgrades(), e.invalidated_copies);

    // 2. Simulate it on both ring protocols.
    println!();
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::builder(protocol, spec.procs).build()?;
        let report = RingSystem::new(cfg, Workload::new(spec.clone())?)?.run();
        println!(
            "{:<10}: proc util {:5.1} %, miss latency {:4.0} ns",
            protocol.name(),
            100.0 * report.proc_util,
            report.miss_latency_ns(),
        );
    }
    println!();
    println!("migratory-dominant sharing favours snooping, as in the paper's MP3D");
    Ok(())
}
