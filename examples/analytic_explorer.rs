//! Design-space exploration with the analytical models: what does it take
//! for a bus to keep up with a ring, across the whole processor-speed range?
//! (The machinery behind the paper's Table 4.)
//!
//! Run with `cargo run --release --example analytic_explorer`.

use ringsim::analytic::{match_bus_clock, ModelInput};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{characterize, Benchmark};
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 16;
    let ch = characterize(&Benchmark::Cholesky.spec(procs)?.with_refs(20_000))?;
    let input = ModelInput::from_characteristics(&ch);

    println!("cholesky.16: bus clock needed to match a 500 MHz slotted ring");
    println!("{:-<78}", "");
    println!(
        "{:>5} | {:>14} | {:>13} | {:>12} | {:>12}",
        "MIPS", "bus clock (ns)", "bus clock MHz", "ring util %", "bus util %"
    );
    for mips in [50u64, 100, 200, 400, 800] {
        let m = match_bus_clock(
            &input,
            RingConfig::standard_500mhz(procs),
            ProtocolKind::Snooping,
            Time::from_ps(1_000_000 / mips),
        );
        println!(
            "{:>5} | {:>14.2} | {:>13.0} | {:>12.1} | {:>12.1}",
            mips,
            m.bus_period.as_ns_f64(),
            1000.0 / m.bus_period.as_ns_f64(),
            100.0 * m.ring_net_util,
            100.0 * m.bus_net_util,
        );
    }
    println!();
    println!("buses would need clock rates far beyond early-90s technology (10-30 ns),");
    println!("and even then they run near saturation while the ring stays mostly idle.");
    Ok(())
}
