//! The slotted ring against the split-transaction bus as processors get
//! faster — the technology argument of the paper's §4.3 and Figure 6.
//!
//! Run with `cargo run --release --example ring_vs_bus`.

use ringsim::core::{BusSystem, BusSystemConfig, RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{Benchmark, Workload};
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 16;
    let spec = Benchmark::Mp3d.spec(procs)?.with_refs(15_000);

    println!("mp3d.16: 500 MHz 32-bit ring (snooping) vs 100 MHz 64-bit split-transaction bus");
    println!("{:-<86}", "");
    println!(
        "{:>5} | {:>24} | {:>24} | winner",
        "MIPS", "ring util%/net%/lat", "bus util%/net%/lat"
    );
    for mips in [50u64, 100, 200, 400] {
        let proc_cycle = Time::from_ps(1_000_000 / mips);

        let ring_cfg =
            SystemConfig::builder(ProtocolKind::Snooping, procs).proc_cycle(proc_cycle).build()?;
        let ring = RingSystem::new(ring_cfg, Workload::new(spec.clone())?)?.run();

        let bus_cfg = BusSystemConfig::bus_100mhz(procs).with_proc_cycle(proc_cycle);
        let bus = BusSystem::new(bus_cfg, Workload::new(spec.clone())?)?.run();

        let winner = if ring.proc_util > bus.proc_util { "ring" } else { "bus" };
        println!(
            "{:>5} | {:>6.1} {:>6.1} {:>7.0}ns | {:>6.1} {:>6.1} {:>7.0}ns | {winner}",
            mips,
            100.0 * ring.proc_util,
            100.0 * ring.ring_util,
            ring.miss_latency_ns(),
            100.0 * bus.proc_util,
            100.0 * bus.ring_util,
            bus.miss_latency_ns(),
        );
    }
    println!();
    println!("the bus saturates as processors speed up; the ring's latency stays stable");
    Ok(())
}
