//! Quickstart: simulate a small cache-coherent slotted-ring multiprocessor
//! and print the paper's three headline metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use ringsim::core::{RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::trace::{Workload, WorkloadSpec};
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-processor, 500 MHz slotted ring with the snooping protocol and
    // 100 MIPS processors.
    let cfg =
        SystemConfig::builder(ProtocolKind::Snooping, 8).proc_cycle(Time::from_ns(10)).build()?;

    // A small synthetic workload with a healthy amount of read-write
    // sharing.
    let workload = Workload::new(WorkloadSpec::builder(8).refs(20_000).build()?)?;

    let report = RingSystem::new(cfg, workload)?.run();

    println!("simulated {} of program execution", report.sim_end);
    println!("processor utilisation : {:5.1} %", 100.0 * report.proc_util);
    println!("ring slot utilisation : {:5.1} %", 100.0 * report.ring_util);
    println!("average miss latency  : {:5.0} ns", report.miss_latency_ns());
    println!(
        "misses: {} ({:.2}% of data references), upgrades: {}",
        report.events.misses(),
        100.0 * report.events.total_miss_rate(),
        report.events.upgrades(),
    );
    Ok(())
}
