//! Snooping versus full-map directory on the same ring and workload — the
//! paper's central comparison (§4.2), both by timed simulation and by the
//! analytical model.
//!
//! Run with `cargo run --release --example protocol_shootout`.

use ringsim::analytic::{ModelInput, RingModel};
use ringsim::core::{RingSystem, SystemConfig};
use ringsim::proto::ProtocolKind;
use ringsim::ring::RingConfig;
use ringsim::trace::{Benchmark, Workload};
use ringsim::types::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 16;
    let spec = Benchmark::Mp3d.spec(procs)?.with_refs(20_000);
    let proc_cycle = Time::from_ns(10); // 100 MIPS

    println!("mp3d.16 on a 500 MHz 32-bit slotted ring, 100 MIPS processors");
    println!("{:-<72}", "");
    println!(
        "{:<11} | {:>10} {:>10} {:>14} | {:>8}",
        "protocol", "proc util%", "ring util%", "miss lat (ns)", "retries"
    );

    let mut sim_events = None;
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let cfg = SystemConfig::builder(protocol, procs).proc_cycle(proc_cycle).build()?;
        let workload = Workload::new(spec.clone())?;
        let report = RingSystem::new(cfg, workload)?.run();
        println!(
            "{:<11} | {:>10.1} {:>10.1} {:>14.0} | {:>8}",
            protocol.name(),
            100.0 * report.proc_util,
            100.0 * report.ring_util,
            report.miss_latency_ns(),
            report.retries,
        );
        sim_events.get_or_insert((report.events, spec.instr_per_data));
    }

    // The hybrid methodology: feed the simulator's event mix to the
    // analytical model and sweep the processor speed.
    let (events, ipd) = sim_events.expect("at least one simulation ran");
    let input = ModelInput {
        procs,
        instr_per_data: ipd,
        freqs: ringsim::analytic::ClassFreqs::from_events(&events),
    };
    println!();
    println!("analytical sweep (processor cycle -> snooping util / directory util):");
    let snoop = RingModel::new(RingConfig::standard_500mhz(procs), ProtocolKind::Snooping);
    let dir = RingModel::new(RingConfig::standard_500mhz(procs), ProtocolKind::Directory);
    for ns in [1u64, 2, 5, 10, 20] {
        let t = Time::from_ns(ns);
        let s = snoop.evaluate(&input, t);
        let d = dir.evaluate(&input, t);
        println!(
            "  {ns:>2} ns ({:>3} MIPS): {:5.1}% vs {:5.1}%  (snooping ahead by {:+.1} points)",
            1000 / ns,
            100.0 * s.proc_util,
            100.0 * d.proc_util,
            100.0 * (s.proc_util - d.proc_util),
        );
    }
    Ok(())
}
