//! Offline stand-in for `criterion`: the API subset ringsim's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros),
//! backed by a plain wall-clock timing loop that prints mean ns/iter.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export matching criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 30 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API compatibility; the stand-in's timing loop is
    /// calibrated per sample rather than per wall-clock budget.
    #[must_use]
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: self.samples }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Times `f` and prints the per-iteration mean.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher { iters: 0, elapsed_ns: 0.0, samples: self.samples };
        f(&mut b);
        let per_iter = if b.iters == 0 { 0.0 } else { b.elapsed_ns / b.iters as f64 };
        println!("  {name:<40} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: find an iteration count that runs ~10ms.
        let start = Instant::now();
        std_black_box(f());
        let one = start.elapsed().as_nanos().max(1) as u64;
        let per_sample = (10_000_000 / one).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(f());
            }
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
            self.iters += per_sample;
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
