//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in. No `syn`/`quote` (crates.io is unreachable in
//! this build environment), so the input token stream is parsed directly.
//!
//! Supported shapes — the ones used across the `ringsim` workspace:
//!
//! * structs with named fields (serialised as objects),
//! * tuple structs (newtypes serialise as the inner value, larger tuples as
//!   arrays),
//! * enums whose variants are all unit variants (serialised as the variant
//!   name, matching serde's externally-tagged default),
//! * one generic type parameter layer (each parameter gains a
//!   `serde::Serialize` / `serde::Deserialize` bound, like serde's derive).
//!
//! `derive(Deserialize)` generates a `from_value` that exactly inverts the
//! `to_value` generated for the same shape, so any derived type round-trips
//! through the vendored `serde_json`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the parser extracted from the type definition.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Parsed {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Derives `serde::Serialize` (the vendored trait) for the annotated type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let (impl_generics, ty_generics) = generics_of(&p.generics, Some("::serde::Serialize"));
    let body = match &p.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        p.name
    )
    .parse()
    .expect("serde_derive emitted invalid Rust")
}

/// Derives `serde::Deserialize` (the vendored trait): generates a
/// `from_value` that exactly inverts what `derive_serialize` emits for the
/// same shape.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let (impl_generics, ty_generics) = generics_of(&p.generics, Some("::serde::Deserialize"));
    let body = match &p.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")?)?"))
                .collect();
            format!("::std::option::Option::Some(Self {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            "::std::option::Option::Some(Self(::serde::Deserialize::from_value(v)?))".to_owned()
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ \
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::option::Option::Some(Self({})), \
                     _ => ::std::option::Option::None, \
                 }}",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::option::Option::Some(Self::{v})"))
                .collect();
            format!(
                "match v {{ \
                     ::serde::Value::Str(s) => match s.as_str() {{ \
                         {}, _ => ::std::option::Option::None, \
                     }}, \
                     _ => ::std::option::Option::None, \
                 }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {}{ty_generics} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::option::Option<Self> {{ {body} }}\n\
         }}",
        p.name
    )
    .parse()
    .expect("serde_derive emitted invalid Rust")
}

/// Renders `<T: Bound, ...>` / `<T, ...>` pairs.
fn generics_of(params: &[String], bound: Option<&str>) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g: Vec<String> = params
        .iter()
        .map(|p| match bound {
            Some(b) => format!("{p}: {b}"),
            None => p.clone(),
        })
        .collect();
    (format!("<{}>", impl_g.join(", ")), format!("<{}>", params.join(", ")))
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    // Skip anything (e.g. a where-clause) up to the body or a `;`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(split_top_level(g.stream()).len())
            }
            _ => panic!("serde_derive: unit structs are not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(unit_variants(g.stream()))
            }
            _ => panic!("serde_derive: malformed enum"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Parsed { name, generics, shape }
}

/// Skips leading `#[...]` attributes, doc comments and visibility tokens.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B, ...>` after the type name, returning the parameter names
/// (lifetimes and const params are not needed in this workspace).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else { return params };
    if p.as_char() != '<' {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_param = false,
            TokenTree::Ident(id) if expect_param && depth == 1 => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Splits a group's tokens at top-level commas (tracking `<...>` nesting so
/// generic arguments do not split fields).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0usize;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from a named-struct body.
fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Extracts variant names from an enum body, rejecting payload variants.
fn unit_variants(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            if chunk.len() > i + 1 {
                panic!("serde_derive: only unit enum variants are supported (variant `{name}`)");
            }
            name
        })
        .collect()
}
