//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small serde surface `ringsim` actually uses: a `Serialize`
//! trait rendering into a [`Value`] tree (consumed by the vendored
//! `serde_json`), a `Deserialize` marker, and the two derive macros.
//!
//! The derive macros (in `serde_derive`) support named structs, tuple
//! structs and unit-variant enums — exactly the shapes in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree; the intermediate form all serialisation flows
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a serialisation tree.
    fn to_value(&self) -> Value;
}

/// Marker trait so `T: Deserialize` bounds compile; deserialisation is not
/// exercised anywhere in the workspace.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}
impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
/// Map keys rendered as JSON object keys (serde_json stringifies integer
/// keys the same way).
pub trait SerializeKey {
    /// The key as an object-key string.
    fn key_string(&self) -> String;
}
macro_rules! impl_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}
impl_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, String, bool, char);
impl SerializeKey for &str {
    fn key_string(&self) -> String {
        (*self).to_owned()
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output regardless of hasher state: sort the keys.
        let mut entries: Vec<_> =
            self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect())
    }
}
impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }
}
