//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small serde surface `ringsim` actually uses: a `Serialize`
//! trait rendering into a [`Value`] tree (consumed by the vendored
//! `serde_json`), a `Deserialize` trait rebuilding a type from that same
//! tree (consumed by `serde_json::from_str`, which backs the sweep
//! engine's incremental point cache), and the two derive macros.
//!
//! The derive macros (in `serde_derive`) support named structs, tuple
//! structs and unit-variant enums — exactly the shapes in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree; the intermediate form all serialisation flows
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value (`None` for non-objects and
    /// missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a serialisation tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
///
/// The contract is the exact inverse of [`Serialize`]: for every type in
/// the workspace, `T::from_value(&t.to_value()) == Some(t)` (modulo the
/// usual `NaN` caveat — non-finite floats serialise as `null` and
/// deserialise back as `NaN`). A `None` means the tree does not match the
/// expected shape; callers treat that as "not cached / re-compute".
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a serialisation tree.
    fn from_value(v: &Value) -> Option<Self>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}
impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
/// Map keys rendered as JSON object keys (serde_json stringifies integer
/// keys the same way).
pub trait SerializeKey {
    /// The key as an object-key string.
    fn key_string(&self) -> String;
}
macro_rules! impl_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}
impl_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, String, bool, char);
impl SerializeKey for &str {
    fn key_string(&self) -> String {
        (*self).to_owned()
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output regardless of hasher state: sort the keys.
        let mut entries: Vec<_> =
            self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect())
    }
}
impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// ---------------------------------------------------------------------
// Deserialize impls (inverse of the Serialize impls above).
// ---------------------------------------------------------------------

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return None,
                };
                <$t>::try_from(u).ok()
            }
        }
    )*};
}
macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Option<Self> {
                let i = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u).ok()?,
                    _ => return None,
                };
                <$t>::try_from(i).ok()
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Option<Self> {
        match *v {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            // Non-finite floats serialise as `null`; `NaN` is the only
            // value that round-trips through it unambiguously.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Option<Self> {
        f64::from_value(v).map(|f| f as f32)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Option<Self> {
        match *v {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}
impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Option<Self> {
        String::from_value(v).map(Into::into)
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Option<Self> {
        T::from_value(v).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Option<Self> {
        let items = Vec::<T>::from_value(v)?;
        items.try_into().ok()
    }
}

/// Map keys rebuilt from JSON object-key strings (inverse of
/// [`SerializeKey`]).
pub trait DeserializeKey: Sized {
    /// Parses the key from its object-key string form.
    fn from_key_string(s: &str) -> Option<Self>;
}
macro_rules! impl_de_key {
    ($($t:ty),*) => {$(
        impl DeserializeKey for $t {
            fn from_key_string(s: &str) -> Option<Self> { s.parse().ok() }
        }
    )*};
}
impl_de_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);
impl DeserializeKey for String {
    fn from_key_string(s: &str) -> Option<Self> {
        Some(s.to_owned())
    }
}

impl<K: DeserializeKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Some((K::from_key_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => None,
        }
    }
}
impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Some((K::from_key_string(k)?, V::from_value(val)?)))
                .collect(),
            _ => None,
        }
    }
}
impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => None,
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Option<Self> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Some(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => None,
                }
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u64, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.5)])])
        );
    }

    #[test]
    fn deserialize_inverts_serialize() {
        let v = vec![(1u64, 2.5f64), (7, -0.25)];
        assert_eq!(Vec::<(u64, f64)>::from_value(&v.to_value()), Some(v));
        let opt: Option<Vec<String>> = Some(vec!["a".into()]);
        assert_eq!(Option::<Vec<String>>::from_value(&opt.to_value()), Some(opt));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Some(None));
        let arr = [3u32, 9, 27];
        assert_eq!(<[u32; 3]>::from_value(&arr.to_value()), Some(arr));
    }

    #[test]
    fn deserialize_rejects_mismatched_shapes() {
        assert_eq!(u64::from_value(&Value::Int(-1)), None);
        assert_eq!(u8::from_value(&Value::UInt(256)), None);
        assert_eq!(bool::from_value(&Value::UInt(1)), None);
        assert_eq!(<(u64, u64)>::from_value(&Value::Array(vec![Value::UInt(1)])), None);
        assert!(f64::from_value(&Value::Null).expect("null is NaN").is_nan());
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
