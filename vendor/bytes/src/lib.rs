//! Offline stand-in for the `bytes` crate: just enough of `Bytes`,
//! `BytesMut`, `Buf` and `BufMut` for ringsim's binary trace format
//! (little-endian scalar reads/writes over contiguous buffers).

use std::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(std::sync::Arc::new(v))
    }
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(std::sync::Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations over a byte source.
///
/// # Panics
///
/// Like the real crate, the `get_*` methods panic when the source has too
/// few bytes remaining.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize) {
        self.take_bytes(n);
    }
    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Write-side operations appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u16_le(0xBEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(2.5);
        buf.put_u8(7);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        r.advance(3);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }
}
