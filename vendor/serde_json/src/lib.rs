//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! tree as JSON text and parses JSON text back into it. Output matches
//! serde_json's conventions (2-space pretty indentation, `1.0`-style
//! floats, non-finite floats as `null`).
//!
//! The parser ([`from_str`] / [`parse_value`]) preserves integer fidelity:
//! tokens without a fraction or exponent become `Value::UInt`/`Value::Int`
//! rather than `f64`, so 64-bit seeds survive a round-trip exactly (unlike
//! a float-only reader, which silently loses precision above 2^53). Floats
//! use Rust's shortest-round-trip formatting on the write side, so
//! `parse::<f64>()` recovers the original bits exactly.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Serialisation error (the vendored pipeline is infallible, but the public
/// signatures keep serde_json's `Result` shape).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty JSON with 2-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and rebuilds a `T` from the resulting tree.
///
/// # Errors
///
/// Fails on malformed JSON, trailing garbage, or a tree whose shape does
/// not match `T` (`Deserialize::from_value` returned `None`).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).ok_or_else(|| Error("JSON shape does not match target type".to_owned()))
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Fails on malformed JSON or trailing non-whitespace input.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_owned()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(Error("unterminated string".to_owned())),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| Error("unterminated escape".to_owned()))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let hi = self.hex4()?;
                // Surrogate pair: a high surrogate must be followed by
                // `\uXXXX` holding the low half.
                if (0xD800..0xDC00).contains(&hi) {
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(code)
                            .ok_or_else(|| Error("invalid surrogate pair".to_owned()));
                    }
                    return Err(Error("lone high surrogate".to_owned()));
                }
                char::from_u32(hi).ok_or_else(|| Error("invalid \\u escape".to_owned()))?
            }
            other => return Err(Error(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_owned()))
    }

    /// Numbers without `.`/`e`/`E` parse as integers (`UInt`, or `Int` when
    /// negative) so 64-bit values keep full fidelity; everything else is an
    /// `f64`, whose text form round-trips exactly with the writer's
    /// shortest-round-trip formatting.
    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        let bad = || Error(format!("invalid number `{text}`"));
        if float {
            return text.parse::<f64>().map(Value::Float).map_err(|_| bad());
        }
        if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| bad())
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| bad())
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
                write_value(o, it, indent, d);
            })
        }
        Value::Object(entries) => {
            write_seq(out, entries.iter(), indent, depth, ('{', '}'), |o, (k, val), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, val, indent, d);
            });
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// serde_json convention: integral floats keep a trailing `.0`, non-finite
/// values become `null`.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(1.0), Value::Float(0.25)])),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1.0,\n    0.25\n  ]\n}");
    }

    #[test]
    fn compact_and_escapes() {
        struct S;
        impl Serialize for S {
            fn to_value(&self) -> Value {
                Value::Str("a\"b\\c\nd".into())
            }
        }
        assert_eq!(to_string(&S).unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parse_round_trips_value_tree() {
        let v = Value::Object(vec![
            ("seed".into(), Value::UInt(u64::MAX)),
            ("delta".into(), Value::Int(-42)),
            ("ratio".into(), Value::Float(0.1 + 0.2)),
            ("label".into(), Value::Str("a\"b\\c\nd".into())),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Object(Vec::new())),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        for render in [to_string(&Wrap(v.clone())), to_string_pretty(&Wrap(v.clone()))] {
            assert_eq!(parse_value(&render.unwrap()).unwrap(), v);
        }
    }

    #[test]
    fn from_str_rebuilds_typed_values() {
        let rows: Vec<(u64, f64)> = vec![(u64::MAX, 1.5), (3, -0.25)];
        let text = to_string(&rows).unwrap();
        assert_eq!(from_str::<Vec<(u64, f64)>>(&text).unwrap(), rows);
        assert!(from_str::<Vec<u64>>("[1, 2, oops").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(parse_value("\"\\u0041\\u00e9\"").unwrap(), Value::Str("Aé".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(parse_value("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".into()));
        assert!(parse_value("\"\\ud83d\"").is_err());
    }

    #[test]
    fn nonfinite_floats_are_null() {
        struct S;
        impl Serialize for S {
            fn to_value(&self) -> Value {
                Value::Float(f64::NAN)
            }
        }
        assert_eq!(to_string(&S).unwrap(), "null");
    }
}
