//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! tree as JSON text. Output matches serde_json's conventions (2-space
//! pretty indentation, `1.0`-style floats, non-finite floats as `null`).

use std::fmt;

use serde::{Serialize, Value};

/// Serialisation error (the vendored pipeline is infallible, but the public
/// signatures keep serde_json's `Result` shape).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty JSON with 2-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
                write_value(o, it, indent, d);
            })
        }
        Value::Object(entries) => {
            write_seq(out, entries.iter(), indent, depth, ('{', '}'), |o, (k, val), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, val, indent, d);
            });
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// serde_json convention: integral floats keep a trailing `.0`, non-finite
/// values become `null`.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(1.0), Value::Float(0.25)])),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1.0,\n    0.25\n  ]\n}");
    }

    #[test]
    fn compact_and_escapes() {
        struct S;
        impl Serialize for S {
            fn to_value(&self) -> Value {
                Value::Str("a\"b\\c\nd".into())
            }
        }
        assert_eq!(to_string(&S).unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        struct S;
        impl Serialize for S {
            fn to_value(&self) -> Value {
                Value::Float(f64::NAN)
            }
        }
        assert_eq!(to_string(&S).unwrap(), "null");
    }
}
