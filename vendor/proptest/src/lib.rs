//! Offline stand-in for `proptest`: a deterministic randomized-testing
//! harness supporting the DSL subset ringsim's property tests use —
//! `proptest! { #[test] fn name(x in strategy, ...) { body } }` with range
//! strategies, `any::<bool>()`, tuple strategies and
//! `prop::collection::vec`.
//!
//! Each test runs a fixed number of cases drawn from an RNG seeded by the
//! test name, so failures are reproducible run-to-run. There is no input
//! shrinking; the failing case's values are printed instead.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test executes.
pub const CASES: u64 = 96;

/// SplitMix64 — small, fast, deterministic.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG (the harness hashes the test name).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Hashes a test name into a stable seed (FNV-1a).
#[must_use]
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A source of random test inputs.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}
impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves under the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy, TestRng,
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares deterministic randomized tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u64..10, flip in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new($crate::seed_of(stringify!($name)));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)*
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} failed with inputs: {:?}",
                            ($(&$arg,)*)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
